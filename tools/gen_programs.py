#!/usr/bin/env python3
"""Generate the benchmark KC sources in src/repro/programs/.

The five workloads mirror the paper's benchmark set (Section VII):
JPEG encoder/decoder, fixed-point recursive FFT, Quicksort, fully
unrolled AES-128, and the H.264 4x4 integer DCT.  Programs embed
precomputed constant tables (twiddle factors, AES T-tables, DCT basis,
quantisation matrices), which is why they are generated rather than
hand-written; the algorithmic code below is the authoritative source.

Run from the repository root:  python tools/gen_programs.py
"""

from __future__ import annotations

import math
import os

OUT_DIR = os.path.join(os.path.dirname(__file__), "..", "src", "repro", "programs")


def fmt_array(name: str, values, per_line: int = 10, typ: str = "int") -> str:
    lines = [f"const {typ} {name}[{len(values)}] = {{"]
    for i in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[i:i + per_line])
        comma = "," if i + per_line < len(values) else ""
        lines.append("    " + chunk + comma)
    lines.append("};")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# dct4x4: H.264 4x4 integer transform, fully unrolled (high ILP)
# ---------------------------------------------------------------------------

DCT4X4 = """\
// H.264 4x4 integer DCT / inverse DCT, fully unrolled, with the
// standard's quantisation (MF) and dequantisation (V) scaling tables
// for QP=0 — the complete residual-coding path of an H.264 encoder.

// Position-class tables: class of coefficient (i,j) by (i&1, j&1).
// MF (forward quant multiplier, QP%6==0) and V (dequant, QP%6==0).
const int MF_TAB[4] = { 13107, 8066, 8066, 5243 };
const int V_TAB[4] = { 10, 13, 13, 16 };

// 16 blocks: the 1-KiB input + 1-KiB coefficient arrays fit the
// 2-KiB L1 cache, so (unlike AES) the kernel is compute-bound.
int blocks[256];
int coeffs[256];
int levels[256];
int recon[256];

void dct4x4(int *x, int *y) {
    int s00 = x[0];  int s01 = x[1];  int s02 = x[2];  int s03 = x[3];
    int s10 = x[4];  int s11 = x[5];  int s12 = x[6];  int s13 = x[7];
    int s20 = x[8];  int s21 = x[9];  int s22 = x[10]; int s23 = x[11];
    int s30 = x[12]; int s31 = x[13]; int s32 = x[14]; int s33 = x[15];

    // rows
    int a0 = s00 + s03; int a1 = s01 + s02; int a2 = s01 - s02; int a3 = s00 - s03;
    int r00 = a0 + a1; int r02 = a0 - a1; int r01 = (a3 << 1) + a2; int r03 = a3 - (a2 << 1);
    int b0 = s10 + s13; int b1 = s11 + s12; int b2 = s11 - s12; int b3 = s10 - s13;
    int r10 = b0 + b1; int r12 = b0 - b1; int r11 = (b3 << 1) + b2; int r13 = b3 - (b2 << 1);
    int c0 = s20 + s23; int c1 = s21 + s22; int c2 = s21 - s22; int c3 = s20 - s23;
    int r20 = c0 + c1; int r22 = c0 - c1; int r21 = (c3 << 1) + c2; int r23 = c3 - (c2 << 1);
    int d0 = s30 + s33; int d1 = s31 + s32; int d2 = s31 - s32; int d3 = s30 - s33;
    int r30 = d0 + d1; int r32 = d0 - d1; int r31 = (d3 << 1) + d2; int r33 = d3 - (d2 << 1);

    // columns
    int e0 = r00 + r30; int e1 = r10 + r20; int e2 = r10 - r20; int e3 = r00 - r30;
    y[0] = e0 + e1; y[8] = e0 - e1; y[4] = (e3 << 1) + e2; y[12] = e3 - (e2 << 1);
    int f0 = r01 + r31; int f1 = r11 + r21; int f2 = r11 - r21; int f3 = r01 - r31;
    y[1] = f0 + f1; y[9] = f0 - f1; y[5] = (f3 << 1) + f2; y[13] = f3 - (f2 << 1);
    int g0 = r02 + r32; int g1 = r12 + r22; int g2 = r12 - r22; int g3 = r02 - r32;
    y[2] = g0 + g1; y[10] = g0 - g1; y[6] = (g3 << 1) + g2; y[14] = g3 - (g2 << 1);
    int h0 = r03 + r33; int h1 = r13 + r23; int h2 = r13 - r23; int h3 = r03 - r33;
    y[3] = h0 + h1; y[11] = h0 - h1; y[7] = (h3 << 1) + h2; y[15] = h3 - (h2 << 1);
}

void idct4x4(int *y, int *x) {
    int s00 = y[0];  int s01 = y[1];  int s02 = y[2];  int s03 = y[3];
    int s10 = y[4];  int s11 = y[5];  int s12 = y[6];  int s13 = y[7];
    int s20 = y[8];  int s21 = y[9];  int s22 = y[10]; int s23 = y[11];
    int s30 = y[12]; int s31 = y[13]; int s32 = y[14]; int s33 = y[15];

    // rows
    int a0 = s00 + s02; int a1 = s00 - s02; int a2 = (s01 >> 1) - s03; int a3 = s01 + (s03 >> 1);
    int r00 = a0 + a3; int r03 = a0 - a3; int r01 = a1 + a2; int r02 = a1 - a2;
    int b0 = s10 + s12; int b1 = s10 - s12; int b2 = (s11 >> 1) - s13; int b3 = s11 + (s13 >> 1);
    int r10 = b0 + b3; int r13 = b0 - b3; int r11 = b1 + b2; int r12 = b1 - b2;
    int c0 = s20 + s22; int c1 = s20 - s22; int c2 = (s21 >> 1) - s23; int c3 = s21 + (s23 >> 1);
    int r20 = c0 + c3; int r23 = c0 - c3; int r21 = c1 + c2; int r22 = c1 - c2;
    int d0 = s30 + s32; int d1 = s30 - s32; int d2 = (s31 >> 1) - s33; int d3 = s31 + (s33 >> 1);
    int r30 = d0 + d3; int r33 = d0 - d3; int r31 = d1 + d2; int r32 = d1 - d2;

    // columns
    int e0 = r00 + r20; int e1 = r00 - r20; int e2 = (r10 >> 1) - r30; int e3 = r10 + (r30 >> 1);
    x[0] = e0 + e3; x[12] = e0 - e3; x[4] = e1 + e2; x[8] = e1 - e2;
    int f0 = r01 + r21; int f1 = r01 - r21; int f2 = (r11 >> 1) - r31; int f3 = r11 + (r31 >> 1);
    x[1] = f0 + f3; x[13] = f0 - f3; x[5] = f1 + f2; x[9] = f1 - f2;
    int g0 = r02 + r22; int g1 = r02 - r22; int g2 = (r12 >> 1) - r32; int g3 = r12 + (r32 >> 1);
    x[2] = g0 + g3; x[14] = g0 - g3; x[6] = g1 + g2; x[10] = g1 - g2;
    int h0 = r03 + r23; int h1 = r03 - r23; int h2 = (r13 >> 1) - r33; int h3 = r13 + (r33 >> 1);
    x[3] = h0 + h3; x[15] = h0 - h3; x[7] = h1 + h2; x[11] = h1 - h2;
}

void quant_block(int *y, int *lv) {
    // QP = 0: level = (|y| * MF + 2^14) >> 15, sign restored.
    // Branchless (sign trick) and unrolled by row: the quantiser is
    // part of the hot path and must not serialise on branches.
    for (int row = 0; row < 4; row++) {
        int base = row << 2;
        int mf_even = MF_TAB[(row & 1) * 2];
        int mf_odd = MF_TAB[(row & 1) * 2 + 1];
        int v0 = y[base];     int s0 = v0 >> 31;
        int v1 = y[base + 1]; int s1 = v1 >> 31;
        int v2 = y[base + 2]; int s2 = v2 >> 31;
        int v3 = y[base + 3]; int s3 = v3 >> 31;
        int q0 = (((v0 ^ s0) - s0) * mf_even + 16384) >> 15;
        int q1 = (((v1 ^ s1) - s1) * mf_odd + 16384) >> 15;
        int q2 = (((v2 ^ s2) - s2) * mf_even + 16384) >> 15;
        int q3 = (((v3 ^ s3) - s3) * mf_odd + 16384) >> 15;
        lv[base] = (q0 ^ s0) - s0;
        lv[base + 1] = (q1 ^ s1) - s1;
        lv[base + 2] = (q2 ^ s2) - s2;
        lv[base + 3] = (q3 ^ s3) - s3;
    }
}

void dequant_block(int *lv, int *y) {
    for (int row = 0; row < 4; row++) {
        int base = row << 2;
        int v_even = V_TAB[(row & 1) * 2];
        int v_odd = V_TAB[(row & 1) * 2 + 1];
        y[base] = lv[base] * v_even;
        y[base + 1] = lv[base + 1] * v_odd;
        y[base + 2] = lv[base + 2] * v_even;
        y[base + 3] = lv[base + 3] * v_odd;
    }
}

int main() {
    // Independent per-element pattern (no serial PRNG chain) and
    // unrolled setup/verification loops: the benchmark measures the
    // transform, not scaffolding.
    for (int i = 0; i < 256; i = i + 4) {
        blocks[i] = (((i * 40503) >> 4) & 255) - 128;
        blocks[i + 1] = ((((i + 1) * 40503) >> 4) & 255) - 128;
        blocks[i + 2] = ((((i + 2) * 40503) >> 4) & 255) - 128;
        blocks[i + 3] = ((((i + 3) * 40503) >> 4) & 255) - 128;
    }
    int reps = 40;
    for (int r = 0; r < reps; r++) {
        for (int b = 0; b < 16; b++) {
            dct4x4(&blocks[b << 4], &coeffs[b << 4]);
        }
    }
    for (int b = 0; b < 16; b++) {
        quant_block(&coeffs[b << 4], &levels[b << 4]);
        dequant_block(&levels[b << 4], &coeffs[b << 4]);
        idct4x4(&coeffs[b << 4], &recon[b << 4]);
    }
    int err0 = 0;
    int err1 = 0;
    int sum0 = 0;
    int sum1 = 0;
    for (int i = 0; i < 256; i = i + 2) {
        int d0 = ((recon[i] + 32) >> 6) - blocks[i];
        int d1 = ((recon[i + 1] + 32) >> 6) - blocks[i + 1];
        int m0 = d0 >> 31;
        int m1 = d1 >> 31;
        err0 += (d0 ^ m0) - m0;
        err1 += (d1 ^ m1) - m1;
        sum0 += levels[i] * (i & 15);
        sum1 += levels[i + 1] * ((i + 1) & 15);
    }
    print_int(err0 + err1);
    putchar(' ');
    print_int(sum0 + sum1);
    putchar('\\n');
    return 0;
}
"""


# ---------------------------------------------------------------------------
# fft: recursive fixed-point radix-2 FFT (low ILP: small basic blocks)
# ---------------------------------------------------------------------------

def gen_fft() -> str:
    n = 256
    cos_tab = [round(math.cos(2 * math.pi * k / n) * 16384) for k in range(n // 2)]
    sin_tab = [round(math.sin(2 * math.pi * k / n) * 16384) for k in range(n // 2)]
    return f"""\
// Fixed-point (Q14) radix-2 FFT, recursive decimation in time.
// The recursive structure — many calls, small basic blocks — is what
// limits its ILP (paper Section VII-B discusses exactly this effect).

{fmt_array("COS_TAB", cos_tab)}

{fmt_array("SIN_TAB", sin_tab)}

int xre[256];
int xim[256];

void fft(int *re, int *im, int n, int stride) {{
    if (n == 1) {{
        return;
    }}
    int half = n >> 1;
    int *ere = malloc(half * 4);
    int *eim = malloc(half * 4);
    int *ore = malloc(half * 4);
    int *oim = malloc(half * 4);
    for (int i = 0; i < half; i++) {{
        ere[i] = re[2 * i];
        eim[i] = im[2 * i];
        ore[i] = re[2 * i + 1];
        oim[i] = im[2 * i + 1];
    }}
    fft(ere, eim, half, stride << 1);
    fft(ore, oim, half, stride << 1);
    for (int k = 0; k < half; k++) {{
        int c = COS_TAB[k * stride];
        int s = SIN_TAB[k * stride];
        int tr = (c * ore[k] + s * oim[k]) >> 14;
        int ti = (c * oim[k] - s * ore[k]) >> 14;
        re[k] = ere[k] + tr;
        im[k] = eim[k] + ti;
        re[k + half] = ere[k] - tr;
        im[k + half] = eim[k] - ti;
    }}
    free(ere);
    free(eim);
    free(ore);
    free(oim);
}}

int main() {{
    int seed = 777;
    for (int i = 0; i < 256; i++) {{
        seed = seed * 1103515245 + 12345;
        xre[i] = ((seed >> 16) & 1023) - 512;
        xim[i] = 0;
    }}
    fft(xre, xim, 256, 1);
    int check_re = 0;
    int check_im = 0;
    for (int i = 0; i < 256; i++) {{
        check_re += xre[i] * (i & 7);
        check_im += xim[i] * (i & 7);
    }}
    print_int(check_re);
    putchar(' ');
    print_int(check_im);
    putchar('\\n');
    return 0;
}}
"""


# ---------------------------------------------------------------------------
# qsort: recursive quicksort (control-dominated, low ILP)
# ---------------------------------------------------------------------------

QSORT = """\
// Recursive Quicksort over pseudo-random data, with verification.

int data[1024];

void quicksort(int *a, int lo, int hi) {
    if (lo >= hi) {
        return;
    }
    int pivot = a[(lo + hi) >> 1];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (a[i] < pivot) {
            i++;
        }
        while (a[j] > pivot) {
            j--;
        }
        if (i <= j) {
            int tmp = a[i];
            a[i] = a[j];
            a[j] = tmp;
            i++;
            j--;
        }
    }
    quicksort(a, lo, j);
    quicksort(a, i, hi);
}

int main() {
    int seed = 42;
    for (int i = 0; i < 1024; i++) {
        seed = seed * 1103515245 + 12345;
        data[i] = (seed >> 8) & 65535;
    }
    quicksort(data, 0, 1023);
    int sorted = 1;
    for (int i = 1; i < 1024; i++) {
        if (data[i - 1] > data[i]) {
            sorted = 0;
        }
    }
    int checksum = 0;
    for (int i = 0; i < 1024; i++) {
        checksum += data[i] * (i & 31);
    }
    print_int(sorted);
    putchar(' ');
    print_int(checksum);
    putchar('\\n');
    return 0;
}
"""


# ---------------------------------------------------------------------------
# aes: AES-128, T-table implementation with fully unrolled rounds
# ---------------------------------------------------------------------------

def _aes_tables():
    sbox = [0] * 256
    p = q = 1
    sbox[0] = 0x63
    while True:
        p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
        q ^= (q << 1) & 0xFF
        q ^= (q << 2) & 0xFF
        q ^= (q << 4) & 0xFF
        if q & 0x80:
            q ^= 0x09
        x = (
            q
            ^ (((q << 1) | (q >> 7)) & 0xFF)
            ^ (((q << 2) | (q >> 6)) & 0xFF)
            ^ (((q << 3) | (q >> 5)) & 0xFF)
            ^ (((q << 4) | (q >> 4)) & 0xFF)
        )
        sbox[p] = (x ^ 0x63) & 0xFF
        if p == 1:
            break

    def xtime(a):
        return ((a << 1) ^ 0x1B) & 0xFF if a & 0x80 else a << 1

    t0 = []
    for i in range(256):
        s = sbox[i]
        word = (xtime(s) << 24) | (s << 16) | (s << 8) | (s ^ xtime(s))
        t0.append(word & 0xFFFFFFFF)

    def ror8(v):
        return ((v >> 8) | (v << 24)) & 0xFFFFFFFF

    t1 = [ror8(v) for v in t0]
    t2 = [ror8(v) for v in t1]
    t3 = [ror8(v) for v in t2]
    rcon = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]
    return sbox, t0, t1, t2, t3, rcon


def gen_aes() -> str:
    sbox, t0, t1, t2, t3, rcon = _aes_tables()
    # Build the unrolled rounds textually: state in s0..s3, temp n0..n3.
    lines = []
    src, dst = ("s0", "s1", "s2", "s3"), ("n0", "n1", "n2", "n3")
    for rnd in range(1, 10):
        k = 4 * rnd
        lines.append(f"    // round {rnd}")
        for i in range(4):
            a, b, c, d = src[i], src[(i + 1) % 4], src[(i + 2) % 4], src[(i + 3) % 4]
            lines.append(
                f"    {dst[i]} = T0[({a} >> 24) & 255] ^ T1[({b} >> 16) & 255]"
                f" ^ T2[({c} >> 8) & 255] ^ T3[{d} & 255] ^ rk[{k + i}];"
            )
        src, dst = dst, src
    s0, s1, s2, s3 = src
    unrolled_rounds = "\n".join(lines)
    return f"""\
// AES-128 encryption, T-table implementation, all ten rounds fully
// unrolled.  The four 1-KiB T-tables (4 KiB working set) exceed the
// 2-KiB L1 cache, so ILP alone over-predicts performance — the same
// observation the paper makes for its AES benchmark (Figure 4).

{fmt_array("SBOX", sbox, 12)}

{fmt_array("T0", t0, 6, "unsigned int")}

{fmt_array("T1", t1, 6, "unsigned int")}

{fmt_array("T2", t2, 6, "unsigned int")}

{fmt_array("T3", t3, 6, "unsigned int")}

{fmt_array("RCON", rcon, 10)}

unsigned int round_keys[44];
unsigned int input_blocks[64];
unsigned int output_blocks[64];

void key_expand(unsigned int *key) {{
    round_keys[0] = key[0];
    round_keys[1] = key[1];
    round_keys[2] = key[2];
    round_keys[3] = key[3];
    for (int i = 4; i < 44; i++) {{
        unsigned int tmp = round_keys[i - 1];
        if ((i & 3) == 0) {{
            unsigned int rot = (tmp << 8) | (tmp >> 24);
            tmp = (SBOX[(rot >> 24) & 255] << 24)
                | (SBOX[(rot >> 16) & 255] << 16)
                | (SBOX[(rot >> 8) & 255] << 8)
                | SBOX[rot & 255];
            tmp = tmp ^ (RCON[(i >> 2) - 1] << 24);
        }}
        round_keys[i] = round_keys[i - 4] ^ tmp;
    }}
}}

void encrypt_block(unsigned int *in, unsigned int *out, unsigned int *rk) {{
    unsigned int s0 = in[0] ^ rk[0];
    unsigned int s1 = in[1] ^ rk[1];
    unsigned int s2 = in[2] ^ rk[2];
    unsigned int s3 = in[3] ^ rk[3];
    unsigned int n0 = 0;
    unsigned int n1 = 0;
    unsigned int n2 = 0;
    unsigned int n3 = 0;
{unrolled_rounds}
    // final round (SubBytes + ShiftRows + AddRoundKey, no MixColumns)
    out[0] = ((SBOX[({s0} >> 24) & 255] << 24) | (SBOX[({s1} >> 16) & 255] << 16)
            | (SBOX[({s2} >> 8) & 255] << 8) | SBOX[{s3} & 255]) ^ rk[40];
    out[1] = ((SBOX[({s1} >> 24) & 255] << 24) | (SBOX[({s2} >> 16) & 255] << 16)
            | (SBOX[({s3} >> 8) & 255] << 8) | SBOX[{s0} & 255]) ^ rk[41];
    out[2] = ((SBOX[({s2} >> 24) & 255] << 24) | (SBOX[({s3} >> 16) & 255] << 16)
            | (SBOX[({s0} >> 8) & 255] << 8) | SBOX[{s1} & 255]) ^ rk[42];
    out[3] = ((SBOX[({s3} >> 24) & 255] << 24) | (SBOX[({s0} >> 16) & 255] << 16)
            | (SBOX[({s1} >> 8) & 255] << 8) | SBOX[{s2} & 255]) ^ rk[43];
}}

unsigned int key[4];

int main() {{
    key[0] = 0x2b7e1516;
    key[1] = 0x28aed2a6;
    key[2] = 0xabf71588;
    key[3] = 0x09cf4f3c;
    key_expand(key);
    int seed = 99;
    for (int i = 0; i < 64; i++) {{
        seed = seed * 1103515245 + 12345;
        input_blocks[i] = seed;
    }}
    for (int rep = 0; rep < 8; rep++) {{
        for (int b = 0; b < 16; b++) {{
            encrypt_block(&input_blocks[b << 2], &output_blocks[b << 2],
                          round_keys);
        }}
    }}
    unsigned int checksum = 0;
    for (int i = 0; i < 64; i++) {{
        checksum = checksum ^ (output_blocks[i] + i);
    }}
    print_hex(checksum);
    putchar('\\n');
    return 0;
}}
"""


# ---------------------------------------------------------------------------
# crc32: table-driven CRC-32 (IEEE 802.3) over a pseudo-random buffer
# ---------------------------------------------------------------------------

def _crc32_table():
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ 0xEDB88320 if crc & 1 else crc >> 1
        table.append(crc)
    return table


def gen_crc32() -> str:
    return f"""\
// crc32: table-driven CRC-32 (IEEE 802.3 polynomial, reflected) over
// a 1-KiB xorshift32-generated buffer, iterated with chained init —
// result-for-result compatible with zlib/binascii crc32.  One table
// lookup plus shift/xor per byte: a serial dependence chain through
// `crc` with a strided 1-KiB table in between — memory-latency-bound
// where dct4x4 is compute-bound.

{fmt_array("CRC_TAB", _crc32_table(), 6, "unsigned int")}

unsigned int msg[1024];

unsigned int crc32_buf(unsigned int *buf, int n, unsigned int init) {{
    unsigned int crc = init ^ 0xFFFFFFFF;
    for (int i = 0; i < n; i++) {{
        crc = CRC_TAB[(crc ^ buf[i]) & 255] ^ (crc >> 8);
    }}
    return crc ^ 0xFFFFFFFF;
}}

int main() {{
    unsigned int seed = 2463534242;
    for (int i = 0; i < 1024; i++) {{
        seed = seed ^ (seed << 13);
        seed = seed ^ (seed >> 17);
        seed = seed ^ (seed << 5);
        msg[i] = seed & 255;
    }}
    unsigned int crc = 0;
    for (int rep = 0; rep < 16; rep++) {{
        crc = crc32_buf(msg, 1024, crc);
    }}
    print_hex(crc);
    putchar('\\n');
    return 0;
}}
"""


# ---------------------------------------------------------------------------
# jpeg: DCT-based image codec (encoder = cjpeg, decoder = djpeg)
# ---------------------------------------------------------------------------

def gen_jpeg_common() -> str:
    # Orthonormal 8-point DCT-II basis, Q12 fixed point.
    basis = []
    for i in range(8):
        ci = math.sqrt(0.5) if i == 0 else 1.0
        for j in range(8):
            basis.append(round(4096 * 0.5 * ci * math.cos((2 * j + 1) * i * math.pi / 16)))
    quant = [
        16, 11, 10, 16, 24, 40, 51, 61,
        12, 12, 14, 19, 26, 58, 60, 55,
        14, 13, 16, 24, 40, 57, 69, 56,
        14, 17, 22, 29, 51, 87, 80, 62,
        18, 22, 37, 56, 68, 109, 103, 77,
        24, 35, 55, 64, 81, 104, 113, 92,
        49, 64, 78, 87, 103, 121, 120, 101,
        72, 92, 95, 98, 112, 100, 103, 99,
    ]
    zigzag = [
        0, 1, 8, 16, 9, 2, 3, 10,
        17, 24, 32, 25, 18, 11, 4, 5,
        12, 19, 26, 33, 40, 48, 41, 34,
        27, 20, 13, 6, 7, 14, 21, 28,
        35, 42, 49, 56, 57, 50, 43, 36,
        29, 22, 15, 23, 30, 37, 44, 51,
        58, 59, 52, 45, 38, 31, 39, 46,
        53, 60, 61, 54, 47, 55, 62, 63,
    ]
    return f"""\
{fmt_array("DCT_BASIS", basis, 8)}

{fmt_array("QUANT", quant, 8)}

{fmt_array("ZIGZAG", zigzag, 8)}

int image[1024];        // 32x32 input pixels
int bitstream[4096];    // packed (run, level) codes
int recon[1024];        // decoded pixels

int tmp_block[64];
int dct_out[64];

void fill_image() {{
    int seed = 31337;
    for (int y = 0; y < 32; y++) {{
        for (int x = 0; x < 32; x++) {{
            // Smooth gradient plus texture noise: compressible but
            // non-trivial, like a natural image patch.
            seed = seed * 1103515245 + 12345;
            int noise = (seed >> 20) & 31;
            image[y * 32 + x] = ((x * 5 + y * 3) & 127) + noise + 32;
        }}
    }}
}}

void fdct8x8(int *px, int *out) {{
    int tmp[64];
    // rows: tmp = basis * px^T   (each row of px transformed)
    for (int i = 0; i < 8; i++) {{
        for (int j = 0; j < 8; j++) {{
            int acc = 0;
            for (int k = 0; k < 8; k++) {{
                acc += DCT_BASIS[i * 8 + k] * px[j * 8 + k];
            }}
            tmp[i * 8 + j] = acc >> 12;
        }}
    }}
    // columns
    for (int i = 0; i < 8; i++) {{
        for (int j = 0; j < 8; j++) {{
            int acc = 0;
            for (int k = 0; k < 8; k++) {{
                acc += DCT_BASIS[i * 8 + k] * tmp[j * 8 + k];
            }}
            out[i * 8 + j] = acc >> 12;
        }}
    }}
}}

void idct8x8(int *coef, int *out) {{
    int tmp[64];
    for (int i = 0; i < 8; i++) {{
        for (int j = 0; j < 8; j++) {{
            int acc = 0;
            for (int k = 0; k < 8; k++) {{
                acc += DCT_BASIS[k * 8 + i] * coef[j * 8 + k];
            }}
            tmp[i * 8 + j] = acc >> 12;
        }}
    }}
    for (int i = 0; i < 8; i++) {{
        for (int j = 0; j < 8; j++) {{
            int acc = 0;
            for (int k = 0; k < 8; k++) {{
                acc += DCT_BASIS[k * 8 + i] * tmp[j * 8 + k];
            }}
            out[i * 8 + j] = acc >> 12;
        }}
    }}
}}

int encode_image() {{
    int pos = 0;
    for (int by = 0; by < 4; by++) {{
        for (int bx = 0; bx < 4; bx++) {{
            // gather the block, level-shifted
            for (int y = 0; y < 8; y++) {{
                for (int x = 0; x < 8; x++) {{
                    tmp_block[y * 8 + x] = image[(by * 8 + y) * 32 + bx * 8 + x] - 128;
                }}
            }}
            fdct8x8(tmp_block, dct_out);
            // quantise + zigzag + run-length encode
            int run = 0;
            for (int i = 0; i < 64; i++) {{
                int v = dct_out[ZIGZAG[i]];
                int q = QUANT[ZIGZAG[i]];
                int level;
                if (v < 0) {{
                    level = 0 - ((0 - v) + (q >> 1)) / q;
                }} else {{
                    level = (v + (q >> 1)) / q;
                }}
                if (level == 0) {{
                    run++;
                }} else {{
                    bitstream[pos] = (run << 16) | (level & 65535);
                    pos++;
                    run = 0;
                }}
            }}
            bitstream[pos] = -1;  // end-of-block
            pos++;
        }}
    }}
    return pos;
}}

void decode_image(int length) {{
    int pos = 0;
    for (int by = 0; by < 4; by++) {{
        for (int bx = 0; bx < 4; bx++) {{
            for (int i = 0; i < 64; i++) {{
                tmp_block[i] = 0;
            }}
            int index = 0;
            while (pos < length && bitstream[pos] != -1) {{
                int code = bitstream[pos];
                pos++;
                int run = (code >> 16) & 32767;
                int level = code & 65535;
                if (level > 32767) {{
                    level = level - 65536;
                }}
                index += run;
                int zz = ZIGZAG[index];
                tmp_block[zz] = level * QUANT[zz];
                index++;
            }}
            pos++;  // skip end-of-block
            idct8x8(tmp_block, dct_out);
            for (int y = 0; y < 8; y++) {{
                for (int x = 0; x < 8; x++) {{
                    int v = dct_out[y * 8 + x] + 128;
                    if (v < 0) {{
                        v = 0;
                    }}
                    if (v > 255) {{
                        v = 255;
                    }}
                    recon[(by * 8 + y) * 32 + bx * 8 + x] = v;
                }}
            }}
        }}
    }}
}}
"""


def gen_cjpeg() -> str:
    return f"""\
// cjpeg: DCT-based image encoder (the paper's JPEG compression
// benchmark).  8x8 fixed-point DCT, quantisation, zigzag, run-length
// coding of a 32x32 image.

{gen_jpeg_common()}

int main() {{
    fill_image();
    int length = 0;
    for (int rep = 0; rep < 3; rep++) {{
        length = encode_image();
    }}
    int checksum = 0;
    for (int i = 0; i < length; i++) {{
        checksum = checksum ^ (bitstream[i] * (i + 1));
    }}
    print_int(length);
    putchar(' ');
    print_int(checksum);
    putchar('\\n');
    return 0;
}}
"""


def gen_djpeg() -> str:
    return f"""\
// djpeg: DCT-based image decoder (the paper's JPEG decompression
// benchmark).  Encodes once to produce a bitstream, then decodes it
// repeatedly — the decode loop dominates execution.

{gen_jpeg_common()}

int main() {{
    fill_image();
    int length = encode_image();
    for (int rep = 0; rep < 3; rep++) {{
        decode_image(length);
    }}
    int err = 0;
    for (int i = 0; i < 1024; i++) {{
        int d = recon[i] - image[i];
        if (d < 0) {{
            d = 0 - d;
        }}
        err += d;
    }}
    int checksum = 0;
    for (int i = 0; i < 1024; i++) {{
        checksum += recon[i] * (i & 63);
    }}
    print_int(err);
    putchar(' ');
    print_int(checksum);
    putchar('\\n');
    return 0;
}}
"""


def main() -> None:
    out = os.path.abspath(OUT_DIR)
    os.makedirs(out, exist_ok=True)
    programs = {
        "dct4x4.kc": DCT4X4,
        "fft.kc": gen_fft(),
        "qsort.kc": QSORT,
        "aes.kc": gen_aes(),
        "cjpeg.kc": gen_cjpeg(),
        "djpeg.kc": gen_djpeg(),
        "crc32.kc": gen_crc32(),
    }
    for name, text in programs.items():
        path = os.path.join(out, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"wrote {path} ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()
