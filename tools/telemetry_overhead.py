#!/usr/bin/env python3
"""Measure telemetry overhead on the Table I cjpeg benchmark.

Superblock configurations of the same workload:

* ``baseline``   — telemetry fully disabled (the Table I fast path);
* ``metrics``    — post-run metric collection (``collect_metrics``);
* ``profile``    — block-mode hot-spot profiler attached;
* ``stream``     — live NDJSON event streaming to a file sink
  (heartbeat every ``--heartbeat`` instructions);
* ``flight``     — bounded flight recorder riding the block seam.

Plus the AOT engine with a warm persistent plan cache:

* ``aot baseline``      — dense-table dispatch, no observability;
* ``aot streamed``      — same run with events *and* flight attached.

Writes one JSON document (CI uploads it as an artifact) containing the
run report of the metrics-enabled run plus the measured overheads, and
exits non-zero when:

* the metrics-enabled runtime regresses more than ``--max-regression``
  (default 10 %) over baseline, or
* streaming, the flight recorder, or the combined AOT observability
  stack regress more than ``--max-stream-regression`` (default 5 %) —
  the "<5 % overhead" contract from ``docs/observability.md``.

Run from the repository root:

    PYTHONPATH=src python tools/telemetry_overhead.py --out telemetry_overhead.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.framework.pipeline import (  # noqa: E402
    build_benchmark,
    open_plan_cache,
    run,
)
from repro.telemetry import (  # noqa: E402
    EventStream,
    FlightRecorder,
    HotspotProfiler,
)


def best_of(built, repeats, engine="superblock", setup=None, **run_kwargs):
    """Best (fastest) wall-clock seconds and the last RunResult.

    ``setup`` (optional) is called before every timed run and returns
    ``(extra_kwargs, cleanup)`` — fresh per-run observers (an event
    stream must be opened and closed per run) and warm plan-cache
    handles live there, *outside* the timed region where possible; the
    stream/flight construction cost is negligible, the close is not
    timed because a long-running simulation amortizes it to nothing.
    """
    best = None
    result = None
    for _ in range(repeats):
        kwargs = dict(run_kwargs)
        cleanup = None
        if setup is not None:
            extra, cleanup = setup()
            kwargs.update(extra)
        start = time.perf_counter()
        result = run(built, engine=engine, **kwargs)
        elapsed = time.perf_counter() - start
        if cleanup is not None:
            cleanup()
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--program", default="cjpeg",
                        help="bundled workload (default cjpeg)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration; best kept (default 3)")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="allowed metrics-enabled slowdown fraction "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--max-stream-regression", type=float, default=0.05,
                        help="allowed streaming / flight-recorder slowdown "
                             "fraction (default 0.05 = 5%%)")
    parser.add_argument("--heartbeat", type=int, default=250_000,
                        help="heartbeat cadence for the streaming "
                             "configuration (default 250000)")
    parser.add_argument("--out", default="telemetry_overhead.json")
    args = parser.parse_args(argv)

    built = build_benchmark(args.program)
    print(f"measuring {args.program} (best of {args.repeats}) ...",
          flush=True)

    with tempfile.TemporaryDirectory() as workdir:
        events_path = os.path.join(workdir, "events.ndjson")

        def stream_setup():
            stream = EventStream.open(
                events_path, heartbeat_every=args.heartbeat
            )
            return {"events": stream}, stream.close

        def flight_setup():
            return {"flight": FlightRecorder(capacity=512)}, None

        base_s, base_res = best_of(built, args.repeats)
        metrics_s, metrics_res = best_of(built, args.repeats,
                                         collect_metrics=True)
        profile_s, _ = best_of(
            built, args.repeats, profiler=HotspotProfiler(mode="block")
        )
        stream_s, _ = best_of(built, args.repeats, setup=stream_setup)
        with open(events_path, encoding="utf-8") as fh:
            stream_events = sum(1 for line in fh if line.strip())
        flight_s, _ = best_of(built, args.repeats, setup=flight_setup)

        # AOT engine: warm persistent plan cache shared by both
        # configurations so the comparison is steady-state vs
        # steady-state (the cold compile would dwarf the observers).
        cache_dir = os.path.join(workdir, "plancache")
        run(built, engine="aot",
            plan_cache=open_plan_cache(built, directory=cache_dir))

        def aot_setup():
            cache = open_plan_cache(built, directory=cache_dir)
            return {"plan_cache": cache}, None

        def aot_stream_setup():
            extra, _ = aot_setup()
            stream = EventStream.open(
                events_path, heartbeat_every=args.heartbeat
            )
            extra["events"] = stream
            extra["flight"] = FlightRecorder(capacity=512)
            return extra, stream.close

        aot_base_s, _ = best_of(built, args.repeats, engine="aot",
                                setup=aot_setup)
        aot_obs_s, _ = best_of(built, args.repeats, engine="aot",
                               setup=aot_stream_setup)

    instructions = base_res.stats.executed_instructions
    metrics_overhead = metrics_s / base_s - 1.0
    profile_overhead = profile_s / base_s - 1.0
    stream_overhead = stream_s / base_s - 1.0
    flight_overhead = flight_s / base_s - 1.0
    aot_obs_overhead = aot_obs_s / aot_base_s - 1.0
    document = {
        "benchmark": "telemetry_overhead",
        "program": args.program,
        "instructions": instructions,
        "baseline_seconds": round(base_s, 4),
        "metrics_seconds": round(metrics_s, 4),
        "profile_seconds": round(profile_s, 4),
        "stream_seconds": round(stream_s, 4),
        "flight_seconds": round(flight_s, 4),
        "aot_baseline_seconds": round(aot_base_s, 4),
        "aot_streamed_seconds": round(aot_obs_s, 4),
        "metrics_overhead": round(metrics_overhead, 4),
        "profile_overhead": round(profile_overhead, 4),
        "stream_overhead": round(stream_overhead, 4),
        "flight_overhead": round(flight_overhead, 4),
        "aot_observability_overhead": round(aot_obs_overhead, 4),
        "stream_events": stream_events,
        "heartbeat_every": args.heartbeat,
        "max_regression": args.max_regression,
        "max_stream_regression": args.max_stream_regression,
        "run_report": metrics_res.telemetry,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")
    print(f"  baseline {base_s:.3f}s  metrics {metrics_s:.3f}s "
          f"({metrics_overhead:+.1%})  block-profiler {profile_s:.3f}s "
          f"({profile_overhead:+.1%})")
    print(f"  stream {stream_s:.3f}s ({stream_overhead:+.1%}, "
          f"{stream_events} events)  flight {flight_s:.3f}s "
          f"({flight_overhead:+.1%})")
    print(f"  aot baseline {aot_base_s:.3f}s  aot streamed "
          f"{aot_obs_s:.3f}s ({aot_obs_overhead:+.1%})")

    failed = False
    if metrics_overhead > args.max_regression:
        print(f"FAIL: metrics-enabled run regressed "
              f"{metrics_overhead:.1%} > {args.max_regression:.0%}",
              file=sys.stderr)
        failed = True
    for label, overhead in (("streaming", stream_overhead),
                            ("flight recorder", flight_overhead),
                            ("aot observability", aot_obs_overhead)):
        if overhead > args.max_stream_regression:
            print(f"FAIL: {label} regressed {overhead:.1%} > "
                  f"{args.max_stream_regression:.0%}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print(f"OK: metrics {metrics_overhead:.1%} within "
          f"{args.max_regression:.0%}; stream {stream_overhead:.1%}, "
          f"flight {flight_overhead:.1%}, aot "
          f"{aot_obs_overhead:.1%} within "
          f"{args.max_stream_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
