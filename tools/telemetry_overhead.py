#!/usr/bin/env python3
"""Measure telemetry overhead on the Table I cjpeg benchmark.

Three superblock configurations of the same workload:

* ``baseline``   — telemetry fully disabled (the Table I fast path);
* ``metrics``    — post-run metric collection (``collect_metrics``);
* ``profile``    — block-mode hot-spot profiler attached.

Writes one JSON document (CI uploads it as an artifact) containing the
run report of the metrics-enabled run plus the measured overheads, and
exits non-zero when the metrics-enabled runtime regresses more than
``--max-regression`` (default 10 %) over baseline — the CI gate that
keeps the observability layer honest about its own cost.

Run from the repository root:

    PYTHONPATH=src python tools/telemetry_overhead.py --out telemetry_overhead.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.framework.pipeline import build_benchmark, run  # noqa: E402
from repro.telemetry import HotspotProfiler  # noqa: E402


def best_of(built, repeats, **run_kwargs):
    """Best (fastest) wall-clock seconds and the last RunResult."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run(built, engine="superblock", **run_kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--program", default="cjpeg",
                        help="bundled workload (default cjpeg)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration; best kept (default 3)")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="allowed metrics-enabled slowdown fraction "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--out", default="telemetry_overhead.json")
    args = parser.parse_args(argv)

    built = build_benchmark(args.program)
    print(f"measuring {args.program} (best of {args.repeats}) ...",
          flush=True)

    base_s, base_res = best_of(built, args.repeats)
    metrics_s, metrics_res = best_of(built, args.repeats,
                                     collect_metrics=True)
    profile_s, _ = best_of(
        built, args.repeats, profiler=HotspotProfiler(mode="block")
    )

    instructions = base_res.stats.executed_instructions
    metrics_overhead = metrics_s / base_s - 1.0
    profile_overhead = profile_s / base_s - 1.0
    document = {
        "benchmark": "telemetry_overhead",
        "program": args.program,
        "instructions": instructions,
        "baseline_seconds": round(base_s, 4),
        "metrics_seconds": round(metrics_s, 4),
        "profile_seconds": round(profile_s, 4),
        "metrics_overhead": round(metrics_overhead, 4),
        "profile_overhead": round(profile_overhead, 4),
        "max_regression": args.max_regression,
        "run_report": metrics_res.telemetry,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")
    print(f"  baseline {base_s:.3f}s  metrics {metrics_s:.3f}s "
          f"({metrics_overhead:+.1%})  block-profiler {profile_s:.3f}s "
          f"({profile_overhead:+.1%})")

    if metrics_overhead > args.max_regression:
        print(f"FAIL: metrics-enabled run regressed "
              f"{metrics_overhead:.1%} > {args.max_regression:.0%}",
              file=sys.stderr)
        return 1
    print(f"OK: metrics overhead {metrics_overhead:.1%} within "
          f"{args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
