#!/usr/bin/env python3
"""Machine-readable Table I benchmark: engine MIPS per workload.

Runs each requested workload under the interpreter's execution engines
and writes one JSON document so CI (and future PRs) have a perf
trajectory to diff instead of eyeballing pytest-benchmark tables:

* ``predict`` and ``superblock`` are measured over a *full* functional
  run (the acceptance-relevant numbers — the superblock speedup column
  is computed from these);
* ``nocache`` and ``cache`` are measured over a fixed instruction
  budget, since the uncached loop decodes every dynamic instruction
  and would take minutes per workload;
* the ``cycle_models`` section times each workload under AIE and DOE
  twice — fused accounting (compiled into translated superblocks) vs
  the per-instruction ``observe`` path — verifies the cycle counts are
  bitwise-identical, and reports the fused speedup;
* the ``plan_cache`` section times a cold (fresh cache file) against a
  warm start and records the translation/hit counters proving the warm
  run skipped translation entirely;
* the ``aot`` section compiles the whole program ahead of time
  (``kahrisma compile`` in-process), records the compile cost and
  static coverage, and times the warm ``engine="aot"`` run against the
  warm-cache superblock engine (the ``aot`` engine is excluded from
  the generic engine loop — without a compiled module it just *is*
  the superblock engine);
* the ``block_len_ablation`` section re-times the functional
  superblock run under ``--max-block-len`` caps, showing what the
  64-instruction default buys over short blocks;
* the ``observability`` section times the superblock and warm AOT
  engines with live event streaming (NDJSON file sink) *and* the
  flight recorder attached against a bare run, recording the overhead
  fraction and the heartbeat/event counts (the <5 % contract in
  ``docs/observability.md``; the hard CI gate lives in
  ``tools/telemetry_overhead.py``).

Run from the repository root:

    PYTHONPATH=src python tools/bench_to_json.py --out BENCH_table1.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.binutils.loader import load_executable  # noqa: E402
from repro.framework.pipeline import build_benchmark  # noqa: E402
from repro.programs import program_names  # noqa: E402
from repro.sim.interpreter import ENGINES, Interpreter  # noqa: E402
from repro.telemetry import (  # noqa: E402
    SCHEMA_VERSION,
    collect_run_metrics,
)

#: Instruction budget for the engines too slow for full runs.
BUDGETED = {"nocache": 15_000, "cache": 200_000}


def git_commit() -> str:
    """Short commit hash of the working tree ("unknown" outside git)."""
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True, stderr=subprocess.DEVNULL,
        ).strip()
    except Exception:
        return "unknown"


def timed_run(built, engine, max_instructions=None):
    program = load_executable(built.elf, built.arch)
    interp = Interpreter(program.state, engine=engine)
    start = time.perf_counter()
    stats = interp.run(max_instructions=max_instructions
                       if max_instructions is not None else 50_000_000)
    elapsed = time.perf_counter() - start
    return stats, elapsed, interp


def measure_parallel(built, shards, repeats):
    """Time the sharded cycle-model run (``repro.framework.parallel``).

    Reported next to the single-process engines so the perf trajectory
    captures the shard runner too.  The merged architectural stats are
    recorded so regressions in the merge path show up as instruction
    count changes, not just timing noise.
    """
    from repro.framework.parallel import run_parallel

    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_parallel(built, shards=shards, model="doe")
        elapsed = time.perf_counter() - start
        mips = result.stats.executed_instructions / elapsed / 1e6
        if best is None or mips > best["mips"]:
            best = {
                "shards": len(result.shard_results),
                "mips": round(mips, 3),
                "instructions": result.stats.executed_instructions,
                "seconds": round(elapsed, 4),
                "cycles_approx": result.cycles,
                "architectural": result.stats.architectural_dict(),
            }
    return best


def _timed_model_run(built, kind, repeats, **kwargs):
    from repro.framework.pipeline import run as pipeline_run

    best = None
    for _ in range(repeats):
        model = make_model(kind, built.issue_width)
        start = time.perf_counter()
        result = pipeline_run(built, engine="superblock",
                              cycle_model=model, **kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[1]:
            best = (result, elapsed, model)
    return best


def make_model(kind, width):
    from repro.cycles.aie import AieModel
    from repro.cycles.doe import DoeModel

    if kind == "aie":
        return AieModel()
    return DoeModel(issue_width=width)


def measure_cycle_models(built, repeats):
    """AIE/DOE rows: fused vs per-instruction observe, same cycles."""
    out = {}
    for kind in ("aie", "doe"):
        fused, fused_s, fused_model = _timed_model_run(
            built, kind, repeats)
        ref, ref_s, ref_model = _timed_model_run(
            built, kind, repeats, fuse_cycles=False)
        if fused_model.cycles != ref_model.cycles:
            raise SystemExit(
                f"{kind}: fused cycles {fused_model.cycles} != "
                f"observe cycles {ref_model.cycles} — fusion is broken"
            )
        mips = fused.stats.executed_instructions / fused_s / 1e6
        out[kind] = {
            "cycles": fused_model.cycles,
            "instructions": fused.stats.executed_instructions,
            "fused_seconds": round(fused_s, 4),
            "fused_mips": round(mips, 3),
            "observe_seconds": round(ref_s, 4),
            "observe_mips": round(
                ref.stats.executed_instructions / ref_s / 1e6, 3),
            "speedup_fused_vs_observe": round(ref_s / fused_s, 3),
            "cycles_bitwise_identical": True,
        }
    return out


def measure_plan_cache(built, repeats):
    """Cold vs warm start against a fresh persistent plan cache."""
    import tempfile

    from repro.framework.pipeline import open_plan_cache
    from repro.framework.pipeline import run as pipeline_run

    with tempfile.TemporaryDirectory() as cache_dir:
        model = make_model("doe", built.issue_width)
        start = time.perf_counter()
        cold = pipeline_run(
            built, engine="superblock", cycle_model=model,
            plan_cache=open_plan_cache(built, directory=cache_dir),
        )
        cold_s = time.perf_counter() - start
        cold_engine = cold.interpreter.superblock
        best = None
        for _ in range(repeats):
            model = make_model("doe", built.issue_width)
            start = time.perf_counter()
            warm = pipeline_run(
                built, engine="superblock", cycle_model=model,
                plan_cache=open_plan_cache(built, directory=cache_dir),
            )
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[1]:
                best = (warm, elapsed)
        warm, warm_s = best
        warm_engine = warm.interpreter.superblock
    if warm_engine.translations != 0 or warm_engine.plan_cache_hits == 0:
        raise SystemExit(
            f"warm plan-cache run translated "
            f"{warm_engine.translations} plans "
            f"(hits {warm_engine.plan_cache_hits}) — cache is broken"
        )
    return {
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 3),
        "cold_translations": cold_engine.translations,
        "warm_translations": warm_engine.translations,
        "warm_plan_cache_hits": warm_engine.plan_cache_hits,
    }


def measure_aot(built, repeats):
    """Ahead-of-time tier: compile cost, coverage, warm-run speedup.

    Compiles the functional module once (timed — the ``kahrisma
    compile`` cost a user pays), records it into a fresh plan cache,
    then times warm ``engine="aot"`` runs against warm-cache
    superblock runs, each reviving from its own freshly opened cache
    handle so neither side keeps in-process state.
    """
    import tempfile

    from repro.framework.pipeline import open_plan_cache
    from repro.framework.pipeline import run as pipeline_run
    from repro.sim import aot

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = open_plan_cache(built, directory=cache_dir)
        start = time.perf_counter()
        module, per_entry, report = aot.compile_module(
            built.elf, built.arch, model=None
        )
        compile_s = time.perf_counter() - start
        cache.record_module(module.namespace, module.payload())
        for (isa_id, entry_ip), (plan, variants) in per_entry.items():
            cache.record(
                isa_id, entry_ip, plan.span, plan.code_digest,
                module.namespace, variants,
            )
        cache.save()
        # Prime the superblock side so both engines start warm.
        pipeline_run(built, engine="superblock",
                     plan_cache=open_plan_cache(built, directory=cache_dir))
        best_sb = best_aot = None
        for _ in range(repeats):
            start = time.perf_counter()
            pipeline_run(built, engine="superblock",
                         plan_cache=open_plan_cache(built,
                                                    directory=cache_dir))
            elapsed = time.perf_counter() - start
            if best_sb is None or elapsed < best_sb:
                best_sb = elapsed
            start = time.perf_counter()
            result = pipeline_run(built, engine="aot",
                                  plan_cache=open_plan_cache(
                                      built, directory=cache_dir))
            elapsed = time.perf_counter() - start
            if best_aot is None or elapsed < best_aot[1]:
                best_aot = (result, elapsed)
        result, aot_s = best_aot
    binding = result.interpreter.aot
    if binding is None or binding.entries_bound == 0:
        raise SystemExit(
            "warm aot run bound no table entries — the module cache "
            "is broken"
        )
    instructions = result.stats.executed_instructions
    return {
        "compile_seconds": round(compile_s, 4),
        "static_coverage": report["static_coverage"],
        "entries": report["covered"],
        "traces": report["traces"],
        "warm_seconds": round(aot_s, 4),
        "warm_mips": round(instructions / aot_s / 1e6, 3),
        "warm_superblock_seconds": round(best_sb, 4),
        "aot_vs_superblock_speedup": round(best_sb / aot_s, 3),
        "entries_bound": binding.entries_bound,
        "dispatches": binding.dispatches,
        "table_blocks_fraction": round(
            binding.blocks_executed
            / max(binding.blocks_executed
                  + result.interpreter.superblock.blocks_executed, 1),
            4,
        ),
    }


def measure_observability(built, repeats, heartbeat=250_000):
    """Streaming + flight overhead per engine (superblock, warm aot).

    Both configurations run against the same warm persistent plan
    cache, so each engine's comparison is steady-state vs steady-state
    with the only delta being the attached observers (an NDJSON event
    stream writing to a file and a 512-entry flight recorder).
    """
    import tempfile

    from repro.framework.pipeline import open_plan_cache
    from repro.framework.pipeline import run as pipeline_run
    from repro.telemetry import EventStream, FlightRecorder

    out = {}
    with tempfile.TemporaryDirectory() as workdir:
        events_path = os.path.join(workdir, "events.ndjson")
        cache_dir = os.path.join(workdir, "plancache")
        # Prime once: compiles the aot module and fills the plan cache.
        pipeline_run(built, engine="aot",
                     plan_cache=open_plan_cache(built, directory=cache_dir))
        for engine in ("superblock", "aot"):
            best_base = best_obs = None
            events = heartbeats = flight_entries = 0
            for _ in range(repeats):
                start = time.perf_counter()
                pipeline_run(built, engine=engine,
                             plan_cache=open_plan_cache(
                                 built, directory=cache_dir))
                elapsed = time.perf_counter() - start
                if best_base is None or elapsed < best_base:
                    best_base = elapsed
                stream = EventStream.open(
                    events_path, heartbeat_every=heartbeat
                )
                flight = FlightRecorder(capacity=512)
                start = time.perf_counter()
                pipeline_run(built, engine=engine,
                             plan_cache=open_plan_cache(
                                 built, directory=cache_dir),
                             events=stream, flight=flight)
                elapsed = time.perf_counter() - start
                stream.close()
                if best_obs is None or elapsed < best_obs:
                    best_obs = elapsed
                    with open(events_path, encoding="utf-8") as fh:
                        lines = [json.loads(line) for line in fh
                                 if line.strip()]
                    events = len(lines)
                    heartbeats = sum(
                        1 for e in lines if e["type"] == "heartbeat"
                    )
                    flight_entries = len(flight)
            out[engine] = {
                "baseline_seconds": round(best_base, 4),
                "streamed_seconds": round(best_obs, 4),
                "overhead": round(best_obs / best_base - 1.0, 4),
                "heartbeat_every": heartbeat,
                "heartbeats": heartbeats,
                "events": events,
                "flight_entries": flight_entries,
            }
    return out


#: ``--max-block-len`` caps for the superblock ablation (None = the
#: engine's 64-instruction default).
ABLATION_CAPS = (4, 16, None)


def measure_block_len(built, repeats):
    """Functional superblock MIPS under each ``--max-block-len`` cap."""
    from repro.framework.pipeline import run as pipeline_run

    out = {}
    for cap in ABLATION_CAPS:
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = pipeline_run(built, engine="superblock",
                                  max_block_len=cap)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[1]:
                best = (result, elapsed)
        result, elapsed = best
        out["default" if cap is None else str(cap)] = {
            "mips": round(
                result.stats.executed_instructions / elapsed / 1e6, 3),
            "seconds": round(elapsed, 4),
        }
    return out


def measure_workload(name, engines, repeats, shards=0):
    built = build_benchmark(name)
    entry = {"engines": {}}
    for engine in engines:
        if engine == "aot":
            continue  # measured with a compiled module in measure_aot
        budget = BUDGETED.get(engine)
        best = None
        for _ in range(repeats):
            stats, elapsed, interp = timed_run(built, engine, budget)
            mips = stats.executed_instructions / elapsed / 1e6
            if best is None or mips > best["mips"]:
                best = {
                    "engine": engine,
                    "mips": round(mips, 3),
                    "instructions": stats.executed_instructions,
                    "seconds": round(elapsed, 4),
                    "full_run": budget is None,
                    "telemetry": collect_run_metrics(interp),
                }
        entry["engines"][engine] = best
    eng = entry["engines"]
    if "predict" in eng and "superblock" in eng:
        entry["speedup_superblock_vs_predict"] = round(
            eng["superblock"]["mips"] / eng["predict"]["mips"], 3
        )
    if shards:
        entry["parallel"] = measure_parallel(built, shards, repeats)
    entry["cycle_models"] = measure_cycle_models(built, repeats)
    entry["plan_cache"] = measure_plan_cache(built, repeats)
    entry["aot"] = measure_aot(built, repeats)
    entry["block_len_ablation"] = measure_block_len(built, repeats)
    entry["observability"] = measure_observability(built, repeats)
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--programs", default="cjpeg,dct4x4",
        help="comma-separated workloads, or 'all' (default: cjpeg,dct4x4)",
    )
    parser.add_argument(
        "--engines", default=",".join(ENGINES),
        help=f"comma-separated subset of {ENGINES}",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per configuration; the best is kept (default 3)",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="also measure the parallel shard runner with this many "
             "shards (0 = skip; needs >1 CPU to show a speedup)",
    )
    parser.add_argument(
        "--out", default="BENCH_table1.json", help="output path"
    )
    args = parser.parse_args(argv)

    names = (sorted(program_names()) if args.programs == "all"
             else args.programs.split(","))
    engines = args.engines.split(",")
    for engine in engines:
        if engine not in ENGINES:
            parser.error(f"unknown engine {engine!r}")

    document = {
        "benchmark": "table1_simulator_performance",
        # Provenance so the perf trajectory is comparable across PRs.
        "schema_version": SCHEMA_VERSION,
        "git_commit": git_commit(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {},
    }
    for name in names:
        print(f"measuring {name} ...", flush=True)
        document["workloads"][name] = measure_workload(
            name, engines, args.repeats, shards=args.shards
        )

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    for name, entry in document["workloads"].items():
        speedup = entry.get("speedup_superblock_vs_predict")
        row = ", ".join(
            f"{engine} {data['mips']:.2f} MIPS"
            for engine, data in entry["engines"].items()
        )
        extra = f"  (superblock {speedup}x over predict)" if speedup else ""
        print(f"  {name}: {row}{extra}")
        par = entry.get("parallel")
        if par:
            print(f"  {name}: parallel x{par['shards']} "
                  f"{par['mips']:.2f} MIPS (doe)")
        for kind, row in entry.get("cycle_models", {}).items():
            print(f"  {name}: {kind} fused {row['fused_mips']:.2f} MIPS, "
                  f"observe {row['observe_mips']:.2f} MIPS "
                  f"({row['speedup_fused_vs_observe']}x, "
                  f"{row['cycles']} cycles both ways)")
        cache = entry.get("plan_cache")
        if cache:
            print(f"  {name}: plan cache warm {cache['warm_speedup']}x "
                  f"over cold ({cache['warm_plan_cache_hits']} hits, "
                  f"{cache['warm_translations']} warm translations)")
        aot_row = entry.get("aot")
        if aot_row:
            print(f"  {name}: aot compile {aot_row['compile_seconds']}s "
                  f"({aot_row['static_coverage'] * 100:.1f}% static "
                  f"coverage), warm {aot_row['warm_mips']:.2f} MIPS "
                  f"({aot_row['aot_vs_superblock_speedup']}x over warm "
                  f"superblock)")
        ablation = entry.get("block_len_ablation")
        if ablation:
            row = ", ".join(f"cap {cap} {data['mips']:.2f} MIPS"
                            for cap, data in ablation.items())
            print(f"  {name}: block-len ablation: {row}")
        obs = entry.get("observability")
        if obs:
            row = ", ".join(
                f"{engine} {data['overhead']:+.1%} "
                f"({data['heartbeats']} heartbeats)"
                for engine, data in obs.items()
            )
            print(f"  {name}: streaming+flight overhead: {row}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
