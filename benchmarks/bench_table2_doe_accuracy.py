"""Table II — accuracy of the DOE model against the RTL reference.

Paper (Section VII-C): the DCT application, compiled for RISC and
2/4/8-issue VLIW, simulated with perfect branch prediction by (a) the
RTL hardware simulation and (b) the cycle-approximate DOE model:

    Configuration   Hardware   Approximation   Error
    RISC            21768      22062           1.4%
    VLIW2           14111      13922           1.4%
    VLIW4            9774       9878           1.1%
    VLIW8            7774       7992           2.8%

The RTL simulator needs ~8 ms/instruction, the approximate simulator is
~100 000x faster at nearly the same cycle counts.

Our hardware stand-in is the cycle-accurate pipeline of
:mod:`repro.rtl` (same three effects the heuristic ignores); the
reproduced table reports cycle counts, per-row error — asserted to stay
in the single-digit-percent class — and the wall-clock ratio between
the two models (both run in Python here, so the speed ratio is far
smaller than against true RTL simulation; see EXPERIMENTS.md).
"""

from __future__ import annotations

import time

import pytest

from repro.binutils.loader import load_executable
from repro.cycles.doe import DoeModel
from repro.rtl.pipeline import RtlPipeline
from repro.sim.interpreter import Interpreter

from _bench_common import WIDTH_ISAS, build_program

WORKLOAD = "dct4x4"
CONFIGS = ((1, "RISC"), (2, "VLIW2"), (4, "VLIW4"), (8, "VLIW8"))
PAPER_ROWS = {
    "RISC": (21768, 22062, 1.4),
    "VLIW2": (14111, 13922, 1.4),
    "VLIW4": (9774, 9878, 1.1),
    "VLIW8": (7774, 7992, 2.8),
}


def run_with(width: int, model):
    built = build_program(WORKLOAD, WIDTH_ISAS[width])
    program = load_executable(built.elf, built.arch)
    start = time.perf_counter()
    Interpreter(program.state, cycle_model=model).run()
    elapsed = time.perf_counter() - start
    if isinstance(model, RtlPipeline):
        start_timing = time.perf_counter()
        _ = model.cycles  # run the cycle-accurate timing simulation
        elapsed += time.perf_counter() - start_timing
    return model.cycles, elapsed


@pytest.fixture(scope="module")
def accuracy(table_writer):
    rows = []
    for width, label in CONFIGS:
        rtl_cycles, rtl_time = run_with(width, RtlPipeline(width))
        doe_cycles, doe_time = run_with(width, DoeModel(issue_width=width))
        error = abs(doe_cycles - rtl_cycles) / rtl_cycles * 100
        rows.append({
            "label": label,
            "width": width,
            "hardware": rtl_cycles,
            "approx": doe_cycles,
            "error": error,
            "speed_ratio": rtl_time / doe_time if doe_time else 0.0,
        })

    lines = [
        "DCT benchmark, perfect branch prediction for both simulators",
        "(paper values for reference; our 'hardware' is the",
        "cycle-accurate DOE pipeline of repro.rtl):",
        "",
        f"{'Configuration':<14} {'Hardware':>10} {'Approximation':>14} "
        f"{'Error':>7}   {'paper':>21}",
        "-" * 74,
    ]
    for row in rows:
        paper_hw, paper_ap, paper_err = PAPER_ROWS[row["label"]]
        lines.append(
            f"{row['label']:<14} {row['hardware']:>10} "
            f"{row['approx']:>14} {row['error']:>6.1f}%   "
            f"{paper_hw:>7}/{paper_ap:<7} {paper_err:>4.1f}%"
        )
    ratio = sum(r["speed_ratio"] for r in rows) / len(rows)
    lines.append("")
    lines.append(
        f"RTL-reference vs DOE wall-clock ratio: {ratio:.1f}x "
        f"(paper: ~100,000x against true RTL simulation; both of our "
        f"models run in Python on a shared functional simulation)"
    )
    table_writer("table2_doe_accuracy", "\n".join(lines))
    return rows


@pytest.mark.parametrize("width,label", CONFIGS)
def test_row_benchmarked(benchmark, accuracy, width, label):
    """Benchmark entry per configuration: one DOE-model simulation."""

    def doe_run():
        return run_with(width, DoeModel(issue_width=width))[0]

    cycles = benchmark.pedantic(doe_run, rounds=1, iterations=1)
    row = next(r for r in accuracy if r["width"] == width)
    assert cycles == row["approx"]


def test_errors_within_paper_class(benchmark, accuracy):
    """Every row's error stays in the single-digit percent class the
    paper demonstrates (its max: 2.8%; we allow up to 6% because the
    hardware reference is itself a reconstruction)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in accuracy:
        assert row["error"] < 6.0, row
    assert max(r["error"] for r in accuracy) >= 0.0


def test_cycles_decrease_with_width(benchmark, accuracy):
    """Wider instances are faster; at saturation the curve flattens
    (resource sharing may even cost a fraction of a percent, as
    between VLIW4 and VLIW8 here and in the paper's Figure 4 tails)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    hw = [r["hardware"] for r in accuracy]
    for earlier, later in zip(hw, hw[1:]):
        assert later <= earlier * 1.01
