"""Fixtures of the experiment harnesses.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation (Section VII).  Reproduced tables are archived under
``benchmarks/results/`` and printed in the terminal summary (after
pytest's capture ends, so ``pytest benchmarks/ | tee ...`` records
them).
"""

import pytest

from _bench_common import EMITTED_TABLES, build_program, emit_table


@pytest.fixture(scope="session")
def program_builder():
    return build_program


@pytest.fixture(scope="session")
def table_writer():
    return emit_table


def pytest_terminal_summary(terminalreporter):
    """Print every reproduced table after the test summary."""
    if not EMITTED_TABLES:
        return
    write = terminalreporter.write_line
    write("")
    write("reproduced tables and figures "
          "(archived under benchmarks/results/):")
    for name, text in EMITTED_TABLES:
        write("")
        write(f"===== {name} =====")
        for line in text.splitlines():
            write(line)
