"""Table I — simulator performance and per-component costs.

Paper (Section VII-A, cjpeg on a RISC instance):

* 0.177 MIPS without the decode cache,
* 16.7 MIPS with it (99.991 % of detect+decode avoided),
* 29.5 MIPS with instruction prediction (99.2 % of lookups avoided),
* component times solved from a linear system: Execute 33.2 ns,
  Cache Access 26.0 ns, Detect & Decode 5602.0 ns, ILP 21.5 ns,
  AIE 19.7 ns, DOE 32.3 ns, Memory Model 9.5 ns,
* with models active: ILP 18.3, AIE 18.9, DOE 15.3 MIPS.

The reproduction measures the same quantities on the same workload.
Absolute numbers scale by the CPython/C++ gap; the *shape* is asserted:
detect+decode dwarfs execution, the cache removes ~99.99 % of decodes,
prediction removes most hash lookups, and the cycle models add only a
fraction of the base execution cost.
"""

from __future__ import annotations

import time

import pytest

from repro.binutils.loader import load_executable
from repro.cycles.aie import AieModel
from repro.cycles.doe import DoeModel
from repro.cycles.ilp import IlpModel
from repro.cycles.memmodel import MainMemory
from repro.sim.interpreter import Interpreter

WORKLOAD = "cjpeg"
N_FAST = 200_000     # instruction budget for cached variants
N_SLOW = 15_000      # without the decode cache every instr decodes


def fresh_interpreter(program_builder, *, cycle_model=None,
                      use_decode_cache=True, use_prediction=True,
                      engine=None):
    built = program_builder(WORKLOAD)
    program = load_executable(built.elf, built.arch)
    return Interpreter(
        program.state,
        cycle_model=cycle_model,
        use_decode_cache=use_decode_cache,
        use_prediction=use_prediction,
        engine=engine,
    )


def timed_run(program_builder, budget, **kwargs):
    interp = fresh_interpreter(program_builder, **kwargs)
    start = time.perf_counter()
    stats = interp.run(max_instructions=budget)
    elapsed = time.perf_counter() - start
    return elapsed / stats.executed_instructions, stats


# -- timed variants (pytest-benchmark) --------------------------------------


def test_interp_no_decode_cache(benchmark, program_builder):
    def run_slow():
        interp = fresh_interpreter(program_builder, use_decode_cache=False)
        return interp.run(max_instructions=N_SLOW)

    stats = benchmark.pedantic(run_slow, rounds=2, iterations=1)
    assert stats.executed_instructions == N_SLOW
    assert stats.decoded_instructions == N_SLOW


def test_interp_decode_cache(benchmark, program_builder):
    def run_cached():
        interp = fresh_interpreter(program_builder, use_prediction=False)
        return interp.run(max_instructions=N_FAST)

    stats = benchmark.pedantic(run_cached, rounds=3, iterations=1)
    assert stats.cache_lookups == N_FAST


def test_interp_cache_and_prediction(benchmark, program_builder):
    def run_predicted():
        interp = fresh_interpreter(program_builder)
        return interp.run(max_instructions=N_FAST)

    stats = benchmark.pedantic(run_predicted, rounds=3, iterations=1)
    assert stats.prediction_hits > 0.9 * N_FAST


def test_interp_superblock(benchmark, program_builder):
    def run_superblock():
        interp = fresh_interpreter(program_builder, engine="superblock")
        return interp.run(max_instructions=N_FAST)

    stats = benchmark.pedantic(run_superblock, rounds=3, iterations=1)
    assert stats.executed_instructions == N_FAST


@pytest.mark.parametrize("model_name", ["ilp", "aie", "doe"])
def test_interp_with_cycle_model(benchmark, program_builder, model_name):
    def make_model():
        if model_name == "ilp":
            return IlpModel()
        if model_name == "aie":
            return AieModel()
        return DoeModel(issue_width=1)

    def run_with_model():
        interp = fresh_interpreter(program_builder,
                                   cycle_model=make_model())
        return interp.run(max_instructions=N_FAST)

    stats = benchmark.pedantic(run_with_model, rounds=3, iterations=1)
    assert stats.executed_instructions == N_FAST


# -- the reproduced table ------------------------------------------------------


def test_table1_report(benchmark, program_builder, table_writer):
    # Cache-effectiveness rates from a *full* application run (also the
    # headline wall-clock benchmark of the whole simulator).
    def full_run():
        return fresh_interpreter(program_builder).run()

    full = benchmark.pedantic(full_run, rounds=1, iterations=1)
    assert full.exit_code == 0

    # Per-instruction component times from differential measurements,
    # the paper's linear-system approach.
    t_nocache, _ = timed_run(program_builder, N_SLOW,
                             use_decode_cache=False)
    t_cache, _ = timed_run(program_builder, N_FAST, use_prediction=False)
    t_predict, _ = timed_run(program_builder, N_FAST)
    t_super, _ = timed_run(program_builder, N_FAST, engine="superblock")
    t_ilp, _ = timed_run(program_builder, N_FAST, cycle_model=IlpModel())
    t_aie, _ = timed_run(program_builder, N_FAST, cycle_model=AieModel())
    t_doe, _ = timed_run(program_builder, N_FAST,
                         cycle_model=DoeModel(issue_width=1))
    t_aie_ideal, _ = timed_run(
        program_builder, N_FAST,
        cycle_model=AieModel(memory=MainMemory(3)),
    )

    ns = 1e9
    execute = t_predict * ns
    cache_access = max(t_cache - t_predict, 0.0) * ns
    detect_decode = max(t_nocache - t_cache, 0.0) * ns
    ilp_cost = max(t_ilp - t_predict, 0.0) * ns
    aie_cost = max(t_aie - t_predict, 0.0) * ns
    doe_cost = max(t_doe - t_predict, 0.0) * ns
    memory_cost = max(t_aie - t_aie_ideal, 0.0) * ns

    mips_nocache = 1.0 / t_nocache / 1e6
    mips_cache = 1.0 / t_cache / 1e6
    mips_predict = 1.0 / t_predict / 1e6
    mips_super = 1.0 / t_super / 1e6
    mips_ilp = 1.0 / t_ilp / 1e6
    mips_aie = 1.0 / t_aie / 1e6
    mips_doe = 1.0 / t_doe / 1e6

    rows = [
        ("Simulator Components", "paper (ns)", "measured (ns)"),
        ("Execute (1 operation)", "33.2", f"{execute:9.1f}"),
        ("Cache Access", "26.0", f"{cache_access:9.1f}"),
        ("Detect & Decode", "5602.0", f"{detect_decode:9.1f}"),
        ("ILP", "21.5", f"{ilp_cost:9.1f}"),
        ("AIE (including memory)", "19.7", f"{aie_cost:9.1f}"),
        ("DOE (including memory)", "32.3", f"{doe_cost:9.1f}"),
        ("Memory Model", "9.5", f"{memory_cost:9.1f}"),
    ]
    lines = [f"{a:<26} {b:>12} {c:>14}" for a, b, c in rows]
    lines.append("")
    lines.append(
        f"{'configuration':<26} {'paper MIPS':>12} {'measured MIPS':>14}"
    )
    for label, paper, measured in [
        ("no decode cache", "0.177", mips_nocache),
        ("decode cache", "16.7", mips_cache),
        ("cache + prediction", "29.5", mips_predict),
        ("cache + superblocks", "-", mips_super),
        ("with ILP model", "18.3", mips_ilp),
        ("with AIE model", "18.9", mips_aie),
        ("with DOE model", "15.3", mips_doe),
    ]:
        lines.append(f"{label:<26} {paper:>12} {measured:>14.3f}")
    lines.append("")
    lines.append(
        f"decodes avoided      paper 99.991%   measured "
        f"{full.decode_avoidance * 100:.3f}%"
    )
    lines.append(
        f"hash lookups avoided paper 99.2%     measured "
        f"{full.lookup_avoidance * 100:.3f}%"
    )
    lines.append(
        f"memory instructions  paper 24.6%     measured "
        f"{full.memory_instruction_fraction * 100:.1f}%"
    )
    table_writer("table1_simulator_performance", "\n".join(lines))

    # -- shape assertions (paper's qualitative findings) ----------------
    assert full.decode_avoidance > 0.995
    assert full.lookup_avoidance > 0.95
    # Detect & decode dominates execution by orders of magnitude.
    assert detect_decode > 10 * execute
    # The decode cache is transformative; prediction a further win.
    assert mips_cache > 5 * mips_nocache
    assert mips_predict >= mips_cache * 0.95
    # Superblock translation is the headline win of this engine
    # (acceptance bar is 2x on an unloaded machine; 1.5x here keeps
    # the suite robust on shared CI runners).
    assert mips_super > 1.5 * mips_predict
    # Cycle models cost a fraction of base execution (paper: the memory
    # model is "comparably fast" despite 24.6% memory instructions).
    assert doe_cost < 5 * execute
    assert memory_cost < doe_cost
