"""Shared helpers of the experiment harnesses (imported by bench files)."""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro.framework.pipeline import BuildResult, build
from repro.programs import load_program

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

WIDTH_ISAS = {1: "risc", 2: "vliw2", 4: "vliw4", 6: "vliw6", 8: "vliw8"}

_BUILD_CACHE: Dict[Tuple[str, str], BuildResult] = {}


def build_program(name: str, isa: str = "risc") -> BuildResult:
    """Compile a bundled benchmark once per (program, ISA)."""
    key = (name, isa)
    result = _BUILD_CACHE.get(key)
    if result is None:
        result = build(load_program(name), isa=isa, filename=f"{name}.kc")
        _BUILD_CACHE[key] = result
    return result


#: Tables produced during the run; the conftest terminal-summary hook
#: prints them after pytest's capture ends, so they land in
#: ``pytest benchmarks/ | tee bench_output.txt``.
EMITTED_TABLES = []


def emit_table(name: str, text: str) -> None:
    """Archive a reproduced table and queue it for terminal output."""
    EMITTED_TABLES.append((name, text))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as f:
        f.write(text + "\n")
