"""Ablations over the design choices DESIGN.md calls out.

Not part of the paper's evaluation; each section varies one modelling
or implementation decision and reports its effect:

* decode cache and instruction prediction (the Section V-A machinery),
* superblock block chaining (the translation engine's dispatch
  short-cut),
* L1 size sweep (the AES working-set effect),
* blocking vs. pipelined L1 port semantics (Section VI-D wording),
* RTL drift-bound sweep (the hardware's precise-interrupt limit),
* DOE NOP-issue accounting,
* pessimistic vs. offset-disambiguated scheduling and the matching
  ILP-model memory assumption,
* branch predictors for the misprediction extension (the paper's
  Section VIII future work).
"""

from __future__ import annotations

import pytest

from repro.binutils.assembler import Assembler
from repro.binutils.linker import link
from repro.binutils.loader import load_executable
from repro.cycles.doe import DoeModel
from repro.cycles.ilp import IlpModel
from repro.cycles.memmodel import HierarchyConfig, build_hierarchy, find_cache
from repro.lang.driver import compile_source
from repro.programs import load_program
from repro.rtl.pipeline import RtlConfig, RtlPipeline
from repro.sim.interpreter import Interpreter

from _bench_common import build_program, emit_table


def simulate(built, *, cycle_model=None, use_decode_cache=True,
             use_prediction=True, engine=None, max_instructions=None,
             chain=True):
    program = load_executable(built.elf, built.arch)
    interp = Interpreter(
        program.state, cycle_model=cycle_model,
        use_decode_cache=use_decode_cache, use_prediction=use_prediction,
        engine=engine,
    )
    if interp.superblock is not None:
        interp.superblock.chain = chain
    stats = interp.run(max_instructions=max_instructions)
    return stats, cycle_model, interp


def test_ablation_decode_cache(benchmark, table_writer):
    built = build_program("dct4x4")

    def cached():
        return simulate(built)[0]

    stats = benchmark.pedantic(cached, rounds=2, iterations=1)
    nocache_stats = simulate(built, use_decode_cache=False,
                             max_instructions=15_000)[0]
    nopred_stats = simulate(built, use_prediction=False)[0]
    lines = [
        f"{'variant':<24} {'MIPS':>8} {'decodes':>9} {'lookups':>9}",
        f"{'no decode cache':<24} {nocache_stats.mips:>8.3f} "
        f"{nocache_stats.decoded_instructions:>9} {0:>9}",
        f"{'cache, no prediction':<24} {nopred_stats.mips:>8.3f} "
        f"{nopred_stats.decoded_instructions:>9} "
        f"{nopred_stats.cache_lookups:>9}",
        f"{'cache + prediction':<24} {stats.mips:>8.3f} "
        f"{stats.decoded_instructions:>9} {stats.cache_lookups:>9}",
    ]
    emit_table("ablation_decode_cache", "\n".join(lines))
    assert stats.mips > 3 * nocache_stats.mips
    assert stats.cache_lookups < nopred_stats.cache_lookups


def test_ablation_block_chaining(benchmark, table_writer):
    """Superblock engine with and without block chaining.

    Chaining skips the plan-dictionary probe whenever a block's last
    observed successor runs next; disabling it quantifies how much of
    the engine's win comes from the dispatch short-cut vs. the
    translated block bodies themselves.
    """
    built = build_program("dct4x4")

    def chained():
        return simulate(built, engine="superblock")

    stats, _, interp = benchmark.pedantic(chained, rounds=2, iterations=1)
    nochain_stats, _, nochain_interp = simulate(
        built, engine="superblock", chain=False)
    predict_stats = simulate(built)[0]

    lines = [
        f"{'variant':<24} {'MIPS':>8} {'chain hits':>11} {'blocks':>9}",
        f"{'predict loop':<24} {predict_stats.mips:>8.3f} "
        f"{'-':>11} {'-':>9}",
        f"{'superblock, no chain':<24} {nochain_stats.mips:>8.3f} "
        f"{nochain_interp.superblock.chain_hits:>11} "
        f"{nochain_interp.superblock.blocks_executed:>9}",
        f"{'superblock + chain':<24} {stats.mips:>8.3f} "
        f"{interp.superblock.chain_hits:>11} "
        f"{interp.superblock.blocks_executed:>9}",
    ]
    emit_table("ablation_block_chaining", "\n".join(lines))

    # The optimisation must not change what executes.
    assert nochain_stats.executed_instructions == \
        stats.executed_instructions
    assert nochain_stats.executed_slots == stats.executed_slots
    assert nochain_interp.superblock.chain_hits == 0
    # Chaining resolves the successor of most block dispatches.
    assert interp.superblock.chain_hits > \
        0.5 * interp.superblock.blocks_executed


def test_ablation_l1_size(benchmark, table_writer):
    """AES misses the 2-KiB L1; growing the cache removes the paper's
    saturation effect."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    built = build_program("aes", "vliw8")
    lines = [f"{'L1 size':>8} {'miss rate':>10} {'DOE cycles':>11}"]
    results = {}
    for size_kib in (1, 2, 8, 32):
        config = HierarchyConfig(l1_size=size_kib * 1024)
        model = DoeModel(issue_width=8, memory=build_hierarchy(config))
        simulate(built, cycle_model=model)
        miss = find_cache(model.memory, "L1").miss_rate
        results[size_kib] = (miss, model.cycles)
        lines.append(
            f"{size_kib:>6}Ki {miss * 100:>9.1f}% {model.cycles:>11}"
        )
    emit_table("ablation_l1_size", "\n".join(lines))
    assert results[32][0] < results[2][0]
    assert results[32][1] < results[2][1]


def test_ablation_port_semantics(benchmark, table_writer):
    """Blocking (paper wording) vs pipelined L1 port, both models."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    built = build_program("dct4x4", "vliw4")
    lines = [f"{'semantics':<12} {'DOE':>9} {'RTL':>9} {'error':>7}"]
    for blocking in (False, True):
        doe = DoeModel(
            issue_width=4,
            memory=build_hierarchy(
                HierarchyConfig(l1_blocking_port=blocking)
            ),
        )
        simulate(built, cycle_model=doe)
        rtl = RtlPipeline(4, RtlConfig(blocking_port=blocking))
        simulate(built, cycle_model=rtl)
        error = abs(doe.cycles - rtl.cycles) / rtl.cycles * 100
        label = "blocking" if blocking else "pipelined"
        lines.append(
            f"{label:<12} {doe.cycles:>9} {rtl.cycles:>9} {error:>6.1f}%"
        )
    emit_table("ablation_port_semantics", "\n".join(lines))


def test_ablation_drift_limit(benchmark, table_writer):
    """The hardware bounds slot drift for precise interrupts; sweeping
    the bound shows what the DOE model's unbounded-drift heuristic
    ignores (paper simplification #2)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    built = build_program("dct4x4", "vliw4")
    lines = [f"{'drift limit':>11} {'RTL cycles':>11}"]
    cycles = {}
    for limit in (1, 2, 4, 8, 32):
        rtl = RtlPipeline(4, RtlConfig(drift_limit=limit))
        simulate(built, cycle_model=rtl)
        cycles[limit] = rtl.cycles
        lines.append(f"{limit:>11} {rtl.cycles:>11}")
    doe = DoeModel(issue_width=4)
    simulate(built, cycle_model=doe)
    lines.append(f"{'DOE (inf)':>11} {doe.cycles:>11}")
    emit_table("ablation_drift_limit", "\n".join(lines))
    assert cycles[32] <= cycles[1]


def test_ablation_nop_issue(benchmark, table_writer):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    built = build_program("dct4x4", "vliw8")
    with_nops = DoeModel(issue_width=8, count_nop_issue=True)
    simulate(built, cycle_model=with_nops)
    without = DoeModel(issue_width=8, count_nop_issue=False)
    simulate(built, cycle_model=without)
    emit_table(
        "ablation_nop_issue",
        f"NOPs occupy issue slots: {with_nops.cycles} cycles\n"
        f"NOP-compressing fetch:   {without.cycles} cycles",
    )
    assert without.cycles <= with_nops.cycles


def test_ablation_memory_dependence_models(benchmark, table_writer):
    """Pessimistic (paper) vs offset-disambiguated scheduling, and the
    matching ILP-model memory assumption."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.adl.kahrisma import KAHRISMA

    source = load_program("dct4x4")
    built = build_program("dct4x4", "vliw8")
    doe = DoeModel(issue_width=8)
    simulate(built, cycle_model=doe)
    pessimistic_cycles = doe.cycles

    # Rebuild with offset disambiguation enabled in the scheduler.
    compiled = compile_source(source, KAHRISMA, isa="vliw8",
                              filename="dct4x4.kc",
                              disambiguate_offsets=True)
    obj = Assembler(KAHRISMA).assemble(compiled.assembly, "dct4x4.s")
    elf, _ = link([obj], KAHRISMA, entry_symbol=compiled.entry_symbol,
                  entry_isa=compiled.entry_isa)
    program = load_executable(elf, KAHRISMA)
    doe2 = DoeModel(issue_width=8)
    Interpreter(program.state, cycle_model=doe2).run()

    # ILP model with and without the pessimistic memory assumption.
    risc = build_program("dct4x4", "risc")
    pess = IlpModel()
    simulate(risc, cycle_model=pess)
    exact = IlpModel(pessimistic_memory=False)
    simulate(risc, cycle_model=exact)

    emit_table(
        "ablation_memory_dependences",
        "scheduler (DOE cycles @ VLIW8):\n"
        f"  pessimistic (paper default)   {pessimistic_cycles}\n"
        f"  offset-disambiguated          {doe2.cycles}\n"
        "ILP model:\n"
        f"  pessimistic memory            {pess.ilp:.2f} ops/cycle\n"
        f"  no store serialisation        {exact.ilp:.2f} ops/cycle",
    )
    assert doe2.cycles <= pessimistic_cycles * 1.02
    assert exact.ilp >= pess.ilp


def test_ablation_branch_prediction(benchmark, table_writer):
    """The misprediction extension across predictor types.

    Perfect prediction (the paper's evaluation setup) vs. static and
    dynamic predictors, on the branchiest workload (qsort) and the
    straight-line one (dct4x4)."""
    from repro.cycles.branch import (
        BimodalPredictor,
        BranchModel,
        GsharePredictor,
        NotTakenPredictor,
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'workload':<8} {'predictor':<18} {'mispredict':>11} "
        f"{'DOE cycles':>11} {'vs perfect':>11}"
    ]
    for name in ("qsort", "dct4x4"):
        built = build_program(name)
        perfect = DoeModel(issue_width=1)
        simulate(built, cycle_model=perfect)
        lines.append(
            f"{name:<8} {'perfect (paper)':<18} {'-':>11} "
            f"{perfect.cycles:>11} {'1.000x':>11}"
        )
        results = {}
        for predictor in (NotTakenPredictor(), BimodalPredictor(),
                          GsharePredictor()):
            bm = BranchModel(predictor, penalty=3)
            model = DoeModel(issue_width=1, branch_model=bm)
            simulate(built, cycle_model=model)
            results[predictor.name] = (bm.misprediction_rate, model.cycles)
            lines.append(
                f"{name:<8} {predictor.name:<18} "
                f"{bm.misprediction_rate * 100:>10.1f}% "
                f"{model.cycles:>11} "
                f"{model.cycles / perfect.cycles:>10.3f}x"
            )
        if name == "qsort":
            # Data-dependent branches: learning beats static.  (On
            # dct4x4's compare-to-bound loops static not-taken is
            # already near-optimal, so no ordering is asserted there.)
            assert results["bimodal"][0] < results["static-not-taken"][0]
    emit_table("ablation_branch_prediction", "\n".join(lines))
