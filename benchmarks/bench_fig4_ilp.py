"""Figure 4 — theoretical ILP vs. measured VLIW speedups.

Paper (Section VII-B): the ILP cycle model's upper bound is compared to
the performance actually achieved by RISC/2/4/6/8-issue VLIW processor
instances for the five applications.  Findings reproduced here:

* DCT and AES offer high ILP; FFT, JPEG enc/dec and Quicksort little —
  the recursive FFT is singled out (small basic blocks limit it);
* the ILP measurement is a good estimator of the KAHRISMA-exploitable
  parallelism;
* AES is the exception: its working set exceeds the 2-KiB L1 (the paper
  measures 14 % misses), so the 8-issue instance exploits only a
  fraction of the measured ILP — cache misses are not modelled by the
  ILP measurement.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.binutils.loader import load_executable
from repro.cycles.doe import DoeModel
from repro.cycles.ilp import IlpModel
from repro.cycles.memmodel import find_cache
from repro.sim.interpreter import Interpreter

from _bench_common import WIDTH_ISAS, build_program

APPS = ("dct4x4", "aes", "fft", "cjpeg", "djpeg", "qsort")
WIDTHS = (1, 2, 4, 6, 8)


def run_model(name: str, isa: str, model):
    built = build_program(name, isa)
    program = load_executable(built.elf, built.arch)
    Interpreter(program.state, cycle_model=model).run()
    return model


def measure_series(name: str) -> Dict:
    ilp = run_model(name, "risc", IlpModel())
    doe_cycles: Dict[int, int] = {}
    l1_miss = 0.0
    for width in WIDTHS:
        model = run_model(name, WIDTH_ISAS[width],
                          DoeModel(issue_width=width))
        doe_cycles[width] = model.cycles
        if width == 8:
            l1_miss = find_cache(model.memory, "L1").miss_rate
    return {
        "ilp": ilp.ilp,
        "cycles": doe_cycles,
        "speedups": {w: doe_cycles[1] / doe_cycles[w] for w in WIDTHS},
        "l1_miss": l1_miss,
    }


@pytest.fixture(scope="module")
def series(table_writer):
    data = {name: measure_series(name) for name in APPS}

    header = (
        f"{'application':<10} {'ILP':>6} "
        + "".join(f"{'x' + str(w):>7}" for w in WIDTHS)
        + f" {'L1miss@8':>9}"
    )
    lines = [
        "speedup over the RISC instance per issue width (DOE model),",
        "with the theoretical ILP upper bound (unlimited resources):",
        "",
        header,
        "-" * len(header),
    ]
    for name in APPS:
        row = data[name]
        lines.append(
            f"{name:<10} {row['ilp']:>6.2f} "
            + "".join(f"{row['speedups'][w]:>7.2f}" for w in WIDTHS)
            + f" {row['l1_miss'] * 100:>8.1f}%"
        )
    table_writer("figure4_ilp_vs_vliw", "\n".join(lines))
    return data


@pytest.mark.parametrize("app", APPS)
def test_series_benchmarked(benchmark, series, app):
    """Expose each application's series as a benchmark entry (the
    timed quantity is one DOE-model simulation at width 4)."""

    def one_run():
        return run_model(app, "vliw4", DoeModel(issue_width=4)).cycles

    cycles = benchmark.pedantic(one_run, rounds=1, iterations=1)
    assert cycles == series[app]["cycles"][4]


class TestFigure4Shape:
    """Shape assertions; each consumes the benchmark fixture (with a
    no-op measurement) so the checks also run under --benchmark-only."""

    @pytest.fixture(autouse=True)
    def _noop_benchmark(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_high_vs_low_ilp_groups(self, series):
        """DCT and AES high; FFT, JPEG enc/dec, Quicksort low."""
        high = min(series["dct4x4"]["ilp"], series["aes"]["ilp"])
        low = max(series[name]["ilp"]
                  for name in ("fft", "cjpeg", "djpeg", "qsort"))
        assert high > low

    def test_speedups_monotone(self, series):
        for name in APPS:
            speedups = [series[name]["speedups"][w] for w in WIDTHS]
            for earlier, later in zip(speedups, speedups[1:]):
                assert later >= earlier * 0.98, name

    def test_ilp_upper_bounds_speedup(self, series):
        for name in APPS:
            assert series[name]["speedups"][8] <= series[name]["ilp"] * 1.05

    def test_ilp_predicts_exploitable_parallelism(self, series):
        """Apps with higher ILP achieve higher 8-issue speedup — rank
        correlation between indicator and measurement (the paper's
        claim that ILP guides ISA selection)."""
        import itertools

        names = list(APPS)
        concordant = discordant = 0
        for a, b in itertools.combinations(names, 2):
            d_ilp = series[a]["ilp"] - series[b]["ilp"]
            d_speed = series[a]["speedups"][8] - series[b]["speedups"][8]
            if d_ilp * d_speed > 0:
                concordant += 1
            elif d_ilp * d_speed < 0:
                discordant += 1
        assert concordant > discordant

    def test_aes_saturates_from_cache_misses(self, series):
        """The paper's AES anomaly: plenty of ILP, but the 8-issue
        instance exploits only a fraction — L1 misses (unmodelled by
        ILP) are the cause."""
        aes = series["aes"]
        dct = series["dct4x4"]
        # AES leaves a larger fraction of its ILP unexploited than DCT.
        aes_utilisation = aes["speedups"][8] / aes["ilp"]
        dct_utilisation = dct["speedups"][8] / dct["ilp"]
        assert aes_utilisation < dct_utilisation
        # ...and the cause is visible in the cache statistics.
        assert aes["l1_miss"] > 4 * max(dct["l1_miss"], 0.001)
