#!/usr/bin/env python3
"""Retargeting the whole toolchain from the ADL: a custom MAC operation.

The paper's framework is ADL-centric (Section IV): compiler, assembler
and simulator are generated from one architecture description, so
extending the ISA is a *description* change, not a tool change.  This
example adds a multiply-accumulate operation

    mac rd, rs1, rs2, ra        # rd = R(ra) + R(rs1) * R(rs2)

to a derived architecture and — without touching the assembler or the
simulator — assembles and simulates a dot-product kernel that uses it,
then compares cycles against the baseline mul+add sequence.
"""

from repro.adl.kahrisma import (
    DELAY_MUL,
    ISSUE_WIDTHS,
    ISA_NAMES,
    OPERATIONS,
    REGISTER_FILE,
)
from repro.adl.model import Architecture, Field, Isa, Operation
from repro.adl.validate import check_architecture
from repro.binutils.assembler import Assembler
from repro.binutils.linker import link
from repro.binutils.loader import load_executable
from repro.cycles import DoeModel
from repro.sim.interpreter import Interpreter

MAC = Operation(
    name="mac",
    size=4,
    fields=(
        Field("opcode", 31, 24, const=0x0F, role="opcode"),
        Field("rd", 23, 19, role="reg_dst"),
        Field("rs1", 18, 14, role="reg_src"),
        Field("rs2", 13, 9, role="reg_src"),
        Field("ra", 8, 4, role="reg_src"),
        Field("pad", 3, 0, const=0, role="pad"),
    ),
    behavior="W(rd, R(ra) + s32(R(rs1)) * s32(R(rs2)))",
    src_fields=("rs1", "rs2", "ra"),
    dst_fields=("rd",),
    kind="alu",
    fu_class="mul",
    delay=DELAY_MUL,
    asm_operands=("rd", "rs1", "rs2", "ra"),
)


def build_mac_architecture() -> Architecture:
    """The KAHRISMA description plus one operation — nothing else."""
    extended_ops = OPERATIONS + (MAC,)
    isas = tuple(
        Isa(ident=ident, name=ISA_NAMES[ident], issue_width=width,
            operations=extended_ops, resources=width)
        for ident, width in sorted(ISSUE_WIDTHS.items())
    )
    arch = Architecture(
        name="kahrisma-mac",
        register_file=REGISTER_FILE,
        isas=isas,
        default_isa=0,
    )
    check_architecture(arch)
    return arch


BASELINE_ASM = r"""
.isa risc
.text
.global $risc$main
$risc$main:
    la   r8, a
    la   r9, b
    li   r10, 64          # elements
    li   r11, 0           # accumulator
loop:
    lw   r12, 0(r8)
    lw   r13, 0(r9)
    mul  r14, r12, r13
    add  r11, r11, r14    # separate multiply + accumulate
    addi r8, r8, 4
    addi r9, r9, 4
    addi r10, r10, -1
    bne  r10, r0, loop
    mv   a0, r11
    call $risc$print_int
    li   a0, '\n'
    call $risc$putchar
    li   a0, 0
    call $risc$exit

.data
a: .space 256
b: .space 256
"""

MAC_ASM = BASELINE_ASM.replace(
    """    mul  r14, r12, r13
    add  r11, r11, r14    # separate multiply + accumulate
""",
    """    mac  r11, r12, r13, r11   # fused multiply-accumulate
""",
)

INIT_ASM = r"""
.text
init:
    la   r8, a
    la   r9, b
    li   r10, 64
    li   r12, 1
fill:
    sw   r12, 0(r8)
    sw   r12, 0(r9)
    addi r8, r8, 4
    addi r9, r9, 4
    addi r12, r12, 1
    addi r10, r10, -1
    bne  r10, r0, fill
    ret
"""


def run(arch, asm_text: str, label: str) -> None:
    # Prepend a data-fill call so the dot product is non-trivial.
    asm = asm_text.replace(
        "$risc$main:\n",
        "$risc$main:\n    call init\n",
    ) + INIT_ASM
    obj = Assembler(arch).assemble(asm, f"{label}.s")
    elf, _info = link([obj], arch, entry_symbol="$risc$main", entry_isa=0)
    program = load_executable(elf, arch)
    model = DoeModel(issue_width=1)
    stats = Interpreter(program.state, cycle_model=model).run(
        max_instructions=1_000_000
    )
    print(f"{label:22} output={program.output.strip():>8} "
          f"instructions={stats.executed_instructions:>5} "
          f"DOE cycles={model.cycles:>6}")


def main() -> None:
    arch = build_mac_architecture()
    print("extended architecture:", arch.name)
    print("operations in ISA    :", len(arch.isas[0].operations),
          "(baseline has", len(OPERATIONS), ")")
    print()
    run(arch, BASELINE_ASM, "mul + add (baseline)")
    run(arch, MAC_ASM, "fused mac (extended)")
    print(
        "\nThe assembler accepted the new mnemonic and the simulator\n"
        "executed it without a single line of tool code changing —\n"
        "TargetGen generated the operation table entry and the\n"
        "simulation function from the ADL description."
    )


if __name__ == "__main__":
    main()
