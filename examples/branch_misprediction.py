#!/usr/bin/env python3
"""Branch-misprediction cycle approximation (paper Section VIII).

The paper's future work: *"we plan to integrate cycle-approximation
models for branch misprediction into our simulator."*  This example
exercises that extension: the same workload under perfect prediction
(the paper's evaluation setup), static predictors and dynamic
predictors, on both the heuristic DOE model and the cycle-accurate RTL
reference.
"""

from repro import build, run
from repro.cycles import (
    BackwardTakenPredictor,
    BimodalPredictor,
    BranchModel,
    DoeModel,
    GsharePredictor,
    NotTakenPredictor,
)
from repro.programs import load_program
from repro.rtl import RtlPipeline

PENALTY = 3


def main() -> None:
    source = load_program("qsort")  # data-dependent branches galore
    built = build(source, isa="risc", filename="qsort.kc")

    perfect = DoeModel(issue_width=1)
    run(built, cycle_model=perfect)
    print("workload: qsort (1024 elements), RISC instance, "
          f"penalty {PENALTY} cycles\n")
    print(f"{'predictor':<20} {'mispredict':>11} {'DOE cycles':>11} "
          f"{'slowdown':>9}")
    print(f"{'perfect (paper)':<20} {'-':>11} {perfect.cycles:>11} "
          f"{'1.000x':>9}")

    for predictor in (
        NotTakenPredictor(),
        BackwardTakenPredictor(),
        BimodalPredictor(table_bits=10),
        GsharePredictor(table_bits=10, history_bits=8),
    ):
        branch_model = BranchModel(predictor, penalty=PENALTY)
        model = DoeModel(issue_width=1, branch_model=branch_model)
        run(built, cycle_model=model)
        print(f"{predictor.name:<20} "
              f"{branch_model.misprediction_rate * 100:>10.1f}% "
              f"{model.cycles:>11} "
              f"{model.cycles / perfect.cycles:>8.3f}x")

    print("\ncross-check against the cycle-accurate reference "
          "(bimodal, same seed):")
    doe = DoeModel(
        issue_width=1,
        branch_model=BranchModel(BimodalPredictor(), penalty=PENALTY),
    )
    run(built, cycle_model=doe)
    rtl = RtlPipeline(
        1, branch_model=BranchModel(BimodalPredictor(), penalty=PENALTY)
    )
    run(built, cycle_model=rtl)
    error = abs(doe.cycles - rtl.cycles) / rtl.cycles * 100
    print(f"  DOE {doe.cycles} vs RTL {rtl.cycles} cycles "
          f"({error:.2f}% apart)")


if __name__ == "__main__":
    main()
