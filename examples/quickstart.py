#!/usr/bin/env python3
"""Quickstart: compile a KC program, simulate it, approximate cycles.

Covers the core flow of the paper's framework (Figure 2): C-subset
source -> retargetable compiler -> assembler/linker (ELF) ->
cycle-approximate simulation with the ILP, AIE and DOE models.
"""

from repro import KAHRISMA, build, run
from repro.cycles import AieModel, DoeModel, IlpModel

SOURCE = """\
// Dot product plus a reduction: enough parallelism to see the VLIW
// formats pull ahead of RISC.
int a[64];
int b[64];

int main() {
    for (int i = 0; i < 64; i++) {
        a[i] = i * 7 + 3;
        b[i] = 128 - i;
    }
    int dot = 0;
    for (int i = 0; i < 64; i++) {
        dot += a[i] * b[i];
    }
    print_int(dot);
    putchar('\\n');
    return 0;
}
"""


def main() -> None:
    print("== functional simulation (RISC) ==")
    built = build(SOURCE, isa="risc", filename="quickstart.kc")
    result = run(built)
    print(f"program output : {result.output.strip()}")
    stats = result.stats
    print(f"instructions   : {stats.executed_instructions}")
    print(f"decode cache   : {stats.decode_avoidance * 100:.2f}% decodes avoided")
    print(f"prediction     : {stats.lookup_avoidance * 100:.2f}% lookups avoided")

    print("\n== cycle approximation across instruction formats ==")
    print(f"{'ISA':8} {'instr':>8} {'DOE cycles':>11} {'speedup':>8}")
    baseline = None
    for isa, width in (("risc", 1), ("vliw2", 2), ("vliw4", 4), ("vliw8", 8)):
        built = build(SOURCE, isa=isa, filename="quickstart.kc")
        result = run(built, cycle_model=DoeModel(issue_width=width))
        cycles = result.cycles
        if baseline is None:
            baseline = cycles
        print(f"{isa:8} {result.stats.executed_instructions:>8} "
              f"{cycles:>11} {baseline / cycles:>8.2f}x")

    print("\n== the three cycle models on the RISC stream ==")
    for model in (IlpModel(), AieModel(), DoeModel(issue_width=1)):
        built = build(SOURCE, isa="risc", filename="quickstart.kc")
        result = run(built, cycle_model=model)
        print(f"{model.name:4}: {model.cycles:6d} cycles "
              f"({model.ops_per_cycle:.2f} ops/cycle)")
    print("\nThe ILP number is the theoretical upper bound the paper uses "
          "as its ISA-selection indicator.")


if __name__ == "__main__":
    main()
