#!/usr/bin/env python3
"""Mixed-ISA execution: per-function instruction formats in one binary.

Demonstrates the paper's headline feature (Sections III-V): the
processor reconfigures its instruction format at runtime via the
``switchtarget`` operation.  The compiler prefixes function symbols
with their ISA, and cross-ISA calls run through generated thunks that
switch the format, call, and switch back.
"""

from repro import KAHRISMA, build, run
from repro.cycles import DoeModel

SOURCE = """\
// A parallel kernel (worth a wide VLIW) called from control-heavy
// driver code (cheapest on RISC).
int data[256];

int kernel(int *x, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 4) {
        int a = x[i] * 3 + 1;
        int b = x[i + 1] * 5 + 2;
        int c = x[i + 2] * 7 + 3;
        int d = x[i + 3] * 9 + 4;
        acc += (a ^ b) + (c ^ d);
    }
    return acc;
}

int main() {
    for (int i = 0; i < 256; i++) {
        data[i] = i * 13 + 7;
    }
    int total = 0;
    for (int round = 0; round < 4; round++) {
        total += kernel(data, 256);
    }
    print_int(total);
    putchar('\\n');
    return 0;
}
"""


def simulate(label: str, **build_kwargs) -> None:
    built = build(SOURCE, filename="mixed.kc", **build_kwargs)
    width = max(
        KAHRISMA.isa_named(isa).issue_width
        for isa, _sym in built.compile_result.functions.values()
    )
    result = run(built, cycle_model=DoeModel(issue_width=width))
    print(f"{label:28} output={result.output.strip():>10} "
          f"cycles={result.cycles:>7} "
          f"isa-switches={result.stats.isa_switches}")


def main() -> None:
    print("same program, three configurations:\n")
    simulate("all RISC", isa="risc")
    simulate("all VLIW4", isa="vliw4")
    simulate("mixed: kernel on VLIW4", isa="risc",
             isa_map={"kernel": "vliw4"})
    print(
        "\nThe mixed build keeps main on the 1-EDPE RISC format and only\n"
        "reconfigures to the 4-EDPE VLIW format while the kernel runs —\n"
        "the resource/performance trade-off KAHRISMA is designed for."
    )


if __name__ == "__main__":
    main()
