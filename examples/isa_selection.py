#!/usr/bin/env python3
"""Function-granularity ISA selection from the ILP indicator.

The paper proposes (Sections I, VIII) selecting an ISA per function
using the theoretical ILP measurement, avoiding the need to simulate
every (ISA, application) combination.  This example runs the selection
on the bundled cjpeg benchmark and validates the choice with the DOE
cycle model.
"""

from repro import build, run, select_isas
from repro.cycles import DoeModel
from repro.programs import load_program


def measure(source: str, label: str, *, isa: str = "risc",
            isa_map=None, width: int = 8) -> int:
    built = build(source, isa=isa, isa_map=isa_map, filename="cjpeg.kc")
    result = run(built, cycle_model=DoeModel(issue_width=width))
    print(f"{label:36} {result.cycles:>9} cycles "
          f"(output {result.output.strip()!r})")
    return result.cycles


def main() -> None:
    source = load_program("cjpeg")

    print("== step 1: one profiling run on RISC, ILP per function ==\n")
    report = select_isas(source, filename="cjpeg.kc")
    print(report.format())

    print("\n== step 2: validate the selected mapping with DOE ==\n")
    baseline = measure(source, "all RISC", isa="risc", width=1)
    wide = measure(source, "all VLIW8", isa="vliw8", width=8)
    mixed = measure(source, "selected mixed mapping", isa="risc",
                    isa_map=report.isa_map, width=8)

    print(f"\nspeedup over RISC: VLIW8 {baseline / wide:.2f}x, "
          f"selected mapping {baseline / mixed:.2f}x")
    resources = {
        "risc": 1, "vliw2": 2, "vliw4": 4, "vliw6": 6, "vliw8": 8,
    }
    widest = max(resources[isa] for isa in report.isa_map.values())
    print(f"peak EDPEs needed: VLIW8 build 8, selected mapping {widest} — "
          f"the indicator buys most of the speedup at a fraction of the "
          f"reconfigurable fabric.")


if __name__ == "__main__":
    main()
