#!/usr/bin/env python3
"""Trace generation and RTL cross-validation.

The paper's simulator writes a per-operation trace file used to
validate the RTL hardware implementation (Section V, goal 3).  This
example generates a trace, shows its format, and then performs the
validation the other way round: the heuristic DOE cycle model against
the cycle-accurate RTL reference pipeline (the Table II experiment on
a small kernel).
"""

import io

from repro import build, run
from repro.cycles import DoeModel
from repro.rtl import RtlPipeline
from repro.sim import Tracer

SOURCE = """\
int v[32];

int main() {
    for (int i = 0; i < 32; i++) {
        v[i] = i * i - 16 * i;
    }
    int best = -32768;
    for (int i = 0; i < 32; i++) {
        if (v[i] > best) {
            best = v[i];
        }
    }
    print_int(best);
    putchar('\\n');
    return 0;
}
"""


def main() -> None:
    print("== per-operation trace (first 12 records) ==\n")
    built = build(SOURCE, isa="vliw2", filename="trace.kc")
    tracer = Tracer(limit=2000)
    result = run(built, tracer=tracer, cycle_model=DoeModel(issue_width=2))
    for record in tracer.records[:12]:
        print(record.format())
    print(f"... {len(tracer.records)} records total; "
          f"program output: {result.output.strip()}")

    print("\n== heuristic DOE model vs cycle-accurate RTL reference ==\n")
    print(f"{'ISA':8} {'RTL (hardware)':>14} {'DOE (approx)':>13} {'error':>7}")
    for isa, width in (("risc", 1), ("vliw2", 2), ("vliw4", 4), ("vliw8", 8)):
        built = build(SOURCE, isa=isa, filename="trace.kc")
        doe = run(built, cycle_model=DoeModel(issue_width=width)).cycles
        rtl = run(built, cycle_model=RtlPipeline(issue_width=width)).cycles
        error = abs(doe - rtl) / rtl * 100
        print(f"{isa:8} {rtl:>14} {doe:>13} {error:>6.1f}%")
    print("\nThe heuristic model ignores resource sharing, bounded drift "
          "and hardware memory order — the error stays within a few "
          "percent (paper Table II: 1.1%-2.8%).")


if __name__ == "__main__":
    main()
