"""Programmatic debugger (paper Section V, goal 4)."""

import pytest

from repro.binutils.loader import load_executable
from repro.sim.debugger import (
    Debugger,
    STOP_BREAKPOINT,
    STOP_BUDGET,
    STOP_HALTED,
    STOP_STEPPED,
    STOP_WATCHPOINT,
)

SOURCE = """
int counter = 0;

int bump(int by) {
    counter += by;
    return counter;
}

int main() {
    for (int i = 1; i <= 5; i++) {
        bump(i);
    }
    print_int(counter);
    return 0;
}
"""


@pytest.fixture()
def debugger(kc):
    built = kc(SOURCE, filename="dbg.kc")
    program = load_executable(built.elf, built.arch)
    dbg = Debugger(program)
    dbg._built = built  # convenience for tests below
    return dbg


class TestBreakpoints:
    def test_resolve_by_unmangled_name(self, debugger):
        addr = debugger.resolve("bump")
        assert debugger.resolve("$risc$bump") == addr
        assert debugger.resolve(addr) == addr

    def test_unknown_function(self, debugger):
        with pytest.raises(KeyError):
            debugger.resolve("nonexistent")

    def test_break_hits_every_call(self, debugger):
        debugger.break_at("bump")
        hits = 0
        while debugger.cont() == STOP_BREAKPOINT:
            hits += 1
            assert debugger.where().function == "$risc$bump"
        assert hits == 5
        assert debugger.last_stop == STOP_HALTED
        assert debugger.program.output == "15"

    def test_argument_inspection_at_breakpoint(self, debugger):
        debugger.break_at("bump")
        seen = []
        while debugger.cont() == STOP_BREAKPOINT:
            seen.append(debugger.read_reg("a0"))
        assert seen == [1, 2, 3, 4, 5]

    def test_clear_break(self, debugger):
        debugger.break_at("bump")
        assert debugger.cont() == STOP_BREAKPOINT
        debugger.clear_break("bump")
        assert debugger.breakpoints == []
        assert debugger.cont() == STOP_HALTED

    def test_source_location_at_breakpoint(self, debugger):
        debugger.break_at("bump")
        debugger.cont()
        where = debugger.where()
        assert where.src_file == "dbg.kc"
        assert where.src_line is not None


class TestStepping:
    def test_single_step_advances_one_instruction(self, debugger):
        before = debugger.state.ip
        assert debugger.step() == STOP_STEPPED
        assert debugger.state.ip != before
        stats = debugger.interpreter.stats
        assert stats.executed_instructions == 1

    def test_step_stops_at_halt(self, debugger):
        assert debugger.step(10_000) == STOP_HALTED
        assert debugger.program.output == "15"

    def test_step_honours_breakpoints(self, debugger):
        debugger.break_at("bump")
        assert debugger.step(10_000) == STOP_BREAKPOINT

    def test_cont_budget(self, debugger):
        assert debugger.cont(max_instructions=3) == STOP_BUDGET


class TestWatchpoints:
    def test_watch_global_variable(self, debugger):
        counter_addr = debugger._built.link_info.symbols["counter"]
        debugger.watch(counter_addr)
        values = []
        while debugger.cont() == STOP_WATCHPOINT:
            values.append(debugger.read_word(counter_addr))
        assert values == [1, 3, 6, 10, 15]
        assert debugger.last_stop == STOP_HALTED

    def test_clear_watch(self, debugger):
        counter_addr = debugger._built.link_info.symbols["counter"]
        debugger.watch(counter_addr)
        assert debugger.cont() == STOP_WATCHPOINT
        debugger.clear_watch(counter_addr)
        assert debugger.cont() == STOP_HALTED


class TestInspection:
    def test_register_access_forms(self, debugger):
        debugger.step(3)
        assert debugger.read_reg("sp") == debugger.read_reg(30)
        assert debugger.read_reg("r30") == debugger.read_reg(30)
        with pytest.raises(KeyError):
            debugger.read_reg("xyz")

    def test_ip_history(self, debugger):
        debugger.step(5)
        ips = debugger.backtrace_ips()
        assert len(ips) == 5
        assert ips[-1] != ips[0]

    def test_disassemble_here(self, debugger):
        lines = debugger.disassemble_here(3)
        assert len(lines) == 3
        assert all(":" in line for line in lines)
