"""Ahead-of-time tier (``repro.sim.aot``): differential + SMC coverage.

The AOT engine is a pure optimisation over the superblock engine,
which itself is pinned to the reference ``predict`` loop — so every
test here compares ``engine="aot"`` runs bitwise against
``engine="superblock"``: registers, memory image, exit code,
instruction/slot counts and (for fused models) exact cycle counts.
Self-modifying code gets dedicated tests because the AOT module binds
translated functions for the *whole program* up front: its per-entry
byte digests and live invalidation must fall back to the interactive
engine byte-precisely, mid-run.
"""

from __future__ import annotations

import pytest

from repro.adl.kahrisma import KAHRISMA
from repro.binutils.elf import (
    ET_EXEC,
    PT_LOAD,
    ElfFile,
    ElfSection,
    ProgramHeader,
    SHF_ALLOC,
    SHF_EXECINSTR,
)
from repro.binutils.loader import load_executable
from repro.cycles.aie import AieModel
from repro.cycles.doe import DoeModel
from repro.cycles.ilp import IlpModel
from repro.cycles.memmodel import HierarchyConfig, build_hierarchy
from repro.framework.pipeline import build_benchmark, open_plan_cache, run
from repro.programs import program_names
from repro.sim import aot
from repro.sim.interpreter import Interpreter
from repro.sim.state import TEXT_BASE

from .test_sim_interpreter import enc, make_state
from .test_superblock import mem_digest

BENCHMARKS = ("cjpeg", "djpeg", "fft", "qsort", "aes", "dct4x4", "crc32")

#: Run cap per differential cell — same budget as the cycle-fusion
#: matrix: crosses every hot threshold, keeps the matrix in tier-1.
CAP = 60_000

#: The cycle-fusion suite's two hierarchy shapes: the paper default
#: and a tiny blocking-port variant that forces misses and stalls.
HIERARCHIES = {
    "default": HierarchyConfig(),
    "tiny": HierarchyConfig(
        l1_size=256, l1_assoc=1, l2_size=2 * 1024, l2_assoc=2,
        main_delay=40, l1_blocking_port=True,
    ),
}

_BUILDS = {}
_MODULES = {}


def built_benchmark(name):
    if name not in _BUILDS:
        _BUILDS[name] = build_benchmark(name)
    return _BUILDS[name]


def make_model(kind, width, config):
    if kind == "none":
        return None
    if kind == "ilp":
        return IlpModel()
    memory = build_hierarchy(config)
    if kind == "aie":
        return AieModel(memory=memory)
    return DoeModel(issue_width=width, memory=memory)


def module_for(name, kind, hierarchy):
    """Compile (once per cell) the AOT module serving one matrix cell.

    ILP cells return None — block-observing models have no AOT
    representation, so those cells exercise the engine's transparent
    degradation to the interactive superblock loop.
    """
    key = (name, kind, hierarchy)
    if key not in _MODULES:
        built = built_benchmark(name)
        model = make_model(kind, built.issue_width, HIERARCHIES[hierarchy])
        _MODULES[key] = aot.prepare(
            built.elf, built.arch, model=model, profile_budget=CAP
        )
    return _MODULES[key]


def snap(result, model):
    state = result.program.state
    return {
        "exit": state.exit_code,
        "halted": state.halted,
        "ip": state.ip,
        "regs": tuple(state.regs),
        "mem": mem_digest(state.mem),
        "output": result.output,
        "instructions": result.stats.executed_instructions,
        "slots": result.stats.executed_slots,
        "mem_instructions": result.stats.memory_instructions,
        "mem_ops": result.stats.memory_ops,
        "isa_switches": result.stats.isa_switches,
        "cycles": model.cycles,
        "ops": getattr(model, "ops", 0),
        "model_instructions": getattr(model, "instructions", 0),
    }


class TestDifferentialMatrix:
    """aot vs superblock over every benchmark × model × hierarchy."""

    def test_benchmark_list_is_current(self):
        assert set(BENCHMARKS) == set(program_names())

    @pytest.mark.parametrize("hierarchy", sorted(HIERARCHIES))
    @pytest.mark.parametrize("kind", ["ilp", "aie", "doe"])
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_bitwise_identical(self, name, kind, hierarchy):
        built = built_benchmark(name)
        config = HIERARCHIES[hierarchy]
        ref_model = make_model(kind, built.issue_width, config)
        ref = run(built, engine="superblock", cycle_model=ref_model,
                  max_instructions=CAP)
        module = module_for(name, kind, hierarchy)
        aot_model = make_model(kind, built.issue_width, config)
        got = run(built, engine="aot", aot_module=module,
                  cycle_model=aot_model, max_instructions=CAP)
        assert snap(got, aot_model) == snap(ref, ref_model)
        if kind == "ilp":
            # No AOT representation: the run degraded to the
            # interactive engine (and still matched bitwise).
            assert module is None
            assert got.interpreter.aot is None
        else:
            binding = got.interpreter.aot
            assert binding is not None
            assert binding.blocks_executed > 0

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_functional_bitwise_identical(self, name):
        """The ``""`` namespace (no cycle model) for every benchmark."""
        built = built_benchmark(name)
        ref = run(built, engine="superblock", max_instructions=CAP)
        module = module_for(name, "none", "default")
        got = run(built, engine="aot", aot_module=module,
                  max_instructions=CAP)
        state_a, state_b = ref.program.state, got.program.state
        assert tuple(state_b.regs) == tuple(state_a.regs)
        assert mem_digest(state_b.mem) == mem_digest(state_a.mem)
        assert state_b.exit_code == state_a.exit_code
        assert got.output == ref.output
        assert (got.stats.architectural_dict()
                == ref.stats.architectural_dict())
        assert got.interpreter.aot.blocks_executed > 0


def words_elf(words, isa_id=0):
    """A minimal executable ELF carrying raw instruction words.

    Mirrors ``make_state`` (same base address, so absolute addresses
    inside the encoded words stay valid) but produces a real ELF, so
    the whole-program compile pipeline — section bounds, entry seeds —
    runs unmodified.
    """
    data = b"".join(w.to_bytes(4, "little") for w in words)
    elf = ElfFile(e_type=ET_EXEC, entry=TEXT_BASE, flags=isa_id)
    elf.add_section(ElfSection(
        ".text", addr=TEXT_BASE, data=data,
        flags=SHF_ALLOC | SHF_EXECINSTR,
    ))
    elf.segments.append((
        ProgramHeader(p_type=PT_LOAD, offset=0, vaddr=TEXT_BASE,
                      filesz=len(data), memsz=len(data), flags=0),
        data,
    ))
    return elf


def compile_words(words, **kwargs):
    elf = words_elf(words)
    module, _per_entry, report = aot.compile_module(
        elf, KAHRISMA, profile_budget=0, **kwargs
    )
    return elf, module, report


class TestSelfModifyingCode:
    """Byte-precise invalidation must fall back mid-run."""

    def _patch_loop_words(self, risc_table):
        """A loop whose body instruction is patched on the first pass.

        Iteration 1 executes ``addi r6, r6, 1``; the loop body then
        overwrites that instruction with ``addi r6, r6, 10``, so
        iteration 2 adds 10: r6 == 11 iff the new decode executes.
        """
        data_off = TEXT_BASE + 8 * 4
        patched_addr = TEXT_BASE + 1 * 4
        return [
            enc(risc_table, "addi", rd=5, rs1=0, imm=2),
            enc(risc_table, "addi", rd=6, rs1=6, imm=1),   # patched
            enc(risc_table, "lw", rd=1, rs1=0, imm=data_off),
            enc(risc_table, "addi", rd=2, rs1=0, imm=patched_addr),
            enc(risc_table, "sw", rt=1, rs1=2, imm=0),
            enc(risc_table, "addi", rd=5, rs1=5, imm=-1),
            enc(risc_table, "bne", rs1=5, rs2=0, imm=-6),
            enc(risc_table, "halt"),
            enc(risc_table, "addi", rd=6, rs1=6, imm=10),  # data: new word
        ]

    def test_mid_run_patch_falls_back(self, target, risc_table):
        words = self._patch_loop_words(risc_table)
        elf, module, report = compile_words(words)
        assert report["covered"] >= 1
        reference = make_state(target, words)
        ref_stats = Interpreter(reference, engine="predict").run()

        program = load_executable(elf, KAHRISMA)
        interp = Interpreter(program.state, engine="aot",
                             aot_module=module)
        stats = interp.run()
        assert program.state.regs[6] == 11 == reference.regs[6]
        assert program.state.halted
        assert (stats.executed_instructions
                == ref_stats.executed_instructions == 14)
        # The store over covered code invalidated its row: later
        # passes went through the interactive fallback, not stale
        # translated functions.
        assert interp.aot is not None
        assert interp.aot.rows_invalidated >= 1

    def test_data_store_in_code_page_keeps_rows(self, target, risc_table):
        """Stores into *data* bytes of a covered page must not blow
        away module rows — invalidation is byte-range precise."""
        scratch = TEXT_BASE + 16 * 4  # same page, beyond the code
        words = [
            enc(risc_table, "addi", rd=5, rs1=0, imm=3),
            enc(risc_table, "addi", rd=2, rs1=0, imm=scratch),
            enc(risc_table, "sw", rt=5, rs1=2, imm=0),
            enc(risc_table, "addi", rd=5, rs1=5, imm=-1),
            enc(risc_table, "bne", rs1=5, rs2=0, imm=-3),
            enc(risc_table, "halt"),
        ]
        elf, module, _report = compile_words(words)
        program = load_executable(elf, KAHRISMA)
        interp = Interpreter(program.state, engine="aot",
                             aot_module=module)
        interp.run()
        assert program.state.regs[5] == 0
        assert program.state.mem.load4(scratch) == 1
        assert interp.aot.rows_invalidated == 0
        assert interp.aot.blocks_executed > 0


class TestMaxBlockLen:
    """The configurable superblock cap, end to end."""

    def test_superblock_results_independent_of_cap(self):
        built = built_benchmark("dct4x4")
        ref = run(built, engine="superblock", max_instructions=CAP)
        capped = run(built, engine="superblock", max_block_len=8,
                     max_instructions=CAP)
        assert (capped.stats.architectural_dict()
                == ref.stats.architectural_dict())
        assert capped.output == ref.output
        plans = capped.interpreter.superblock.plans.values()
        assert plans and max(p.n_instr for p in plans) <= 8

    def test_aot_respects_cap(self, risc_table):
        # 12 straight-line instructions then halt: one 13-instruction
        # plan at the default cap, several capped plans under
        # max_block_len=4 (the same carving the engine would do).
        words = [
            enc(risc_table, "addi", rd=5, rs1=5, imm=1) for _ in range(12)
        ] + [enc(risc_table, "halt")]
        elf = words_elf(words)
        _m, per_entry, report = aot.compile_module(
            elf, KAHRISMA, profile_budget=0
        )
        _m4, per_entry4, report4 = aot.compile_module(
            elf, KAHRISMA, profile_budget=0, max_block_len=4
        )
        assert max(p.n_instr for p, _ in per_entry.values()) == 13
        assert max(p.n_instr for p, _ in per_entry4.values()) <= 4
        assert report4["discovered"] > report["discovered"]

    def test_cap_selects_a_different_cache_file(self, tmp_path):
        built = built_benchmark("dct4x4")
        default = open_plan_cache(built, directory=str(tmp_path))
        capped = open_plan_cache(built, directory=str(tmp_path),
                                 block_len=8)
        assert default.path != capped.path


class TestModuleCache:
    """prepare() ↔ PlanCache round trips."""

    def _cache(self, tmp_path, built):
        return open_plan_cache(built, directory=str(tmp_path))

    def test_warm_prepare_revives_without_compiling(self, tmp_path,
                                                    monkeypatch):
        built = built_benchmark("dct4x4")
        cold = aot.prepare(built.elf, built.arch, profile_budget=CAP,
                           plan_cache=self._cache(tmp_path, built))
        assert cold is not None

        def boom(*args, **kwargs):  # pragma: no cover
            raise AssertionError("warm prepare must not recompile")

        monkeypatch.setattr(aot, "compile_module", boom)
        warm = aot.prepare(built.elf, built.arch, profile_budget=CAP,
                           plan_cache=self._cache(tmp_path, built))
        assert warm is not None
        assert warm.namespace == cold.namespace
        assert len(warm.entries) == len(cold.entries)

    def test_warm_module_runs_bitwise_identical(self, tmp_path):
        built = built_benchmark("dct4x4")
        cold = aot.prepare(built.elf, built.arch, profile_budget=CAP,
                           plan_cache=self._cache(tmp_path, built))
        a = run(built, engine="aot", aot_module=cold,
                max_instructions=CAP)
        warm_module = aot.prepare(
            built.elf, built.arch, profile_budget=CAP,
            plan_cache=self._cache(tmp_path, built),
        )
        b = run(built, engine="aot", aot_module=warm_module,
                max_instructions=CAP)
        assert (a.stats.architectural_dict()
                == b.stats.architectural_dict())
        assert tuple(a.program.state.regs) == tuple(b.program.state.regs)
        assert (mem_digest(a.program.state.mem)
                == mem_digest(b.program.state.mem))

    def test_payload_roundtrip(self, risc_table):
        words = [enc(risc_table, "addi", rd=5, rs1=0, imm=7),
                 enc(risc_table, "halt")]
        elf, module, _report = compile_words(words)
        revived = aot.AotModule.from_payload(module.payload())
        assert revived is not None
        assert revived.namespace == module.namespace
        assert revived.entries == module.entries
        program = load_executable(elf, KAHRISMA)
        interp = Interpreter(program.state, engine="aot",
                             aot_module=revived)
        interp.run()
        assert program.state.regs[5] == 7
        assert program.state.halted


class TestTelemetry:
    def test_aot_counters_collected(self):
        from repro.telemetry.collect import collect_interpreter_metrics

        built = built_benchmark("dct4x4")
        module = module_for("dct4x4", "none", "default")
        result = run(built, engine="aot", aot_module=module,
                     max_instructions=CAP)
        metrics = collect_interpreter_metrics(result.interpreter)
        binding = result.interpreter.aot
        assert metrics["sim.aot.entries_total"] == binding.entries_total
        assert metrics["sim.aot.blocks_executed"] > 0
        assert metrics["sim.aot.dispatches"] > 0
        assert metrics["sim.aot.traces_bound"] <= metrics[
            "sim.aot.traces_total"]
