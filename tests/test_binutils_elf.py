"""ELF32 container: write/read roundtrip and format invariants."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.binutils.elf import (
    ELF_MAGIC,
    ElfError,
    ElfFile,
    ElfRelocation,
    ElfSection,
    ElfSymbol,
    EM_KAHRISMA,
    ET_EXEC,
    ET_REL,
    PF_R,
    PF_X,
    ProgramHeader,
    PT_LOAD,
    R_KAH_ABS32,
    R_KAH_PC14,
    SHF_ALLOC,
    SHF_EXECINSTR,
    SHT_NOBITS,
    SHT_PROGBITS,
    STB_GLOBAL,
    STB_LOCAL,
    STT_FUNC,
)


def sample_object() -> ElfFile:
    elf = ElfFile(e_type=ET_REL)
    elf.add_section(
        ElfSection(".text", SHT_PROGBITS, SHF_ALLOC | SHF_EXECINSTR,
                   data=b"\x01\x02\x03\x04" * 4, addralign=4)
    )
    elf.add_section(
        ElfSection(".data", SHT_PROGBITS, SHF_ALLOC, data=b"abcd",
                   addralign=4)
    )
    elf.add_section(ElfSection(".bss", SHT_NOBITS, nobits_size=64))
    elf.symbols.append(
        ElfSymbol("local_label", 4, 0, STB_LOCAL, STT_FUNC, ".text")
    )
    elf.symbols.append(
        ElfSymbol("main", 0, 16, STB_GLOBAL, STT_FUNC, ".text")
    )
    elf.symbols.append(ElfSymbol("external", binding=STB_GLOBAL, section=""))
    elf.relocations.append(
        ElfRelocation(".text", 8, R_KAH_PC14, "external", -4)
    )
    elf.relocations.append(
        ElfRelocation(".data", 0, R_KAH_ABS32, "main", 0)
    )
    return elf


class TestRoundTrip:
    def test_magic_and_machine(self):
        blob = sample_object().write()
        assert blob[:4] == ELF_MAGIC
        machine = struct.unpack_from("<H", blob, 18)[0]
        assert machine == EM_KAHRISMA

    def test_object_roundtrip(self):
        original = sample_object()
        decoded = ElfFile.read(original.write())
        assert decoded.e_type == ET_REL
        assert decoded.section(".text").data == original.section(".text").data
        assert decoded.section(".bss").size == 64
        assert decoded.symbol("main").size == 16
        assert decoded.symbol("main").binding == STB_GLOBAL
        assert decoded.symbol("local_label").binding == STB_LOCAL
        assert not decoded.symbol("external").is_defined
        rels = {(r.section, r.offset): r for r in decoded.relocations}
        assert rels[(".text", 8)].symbol == "external"
        assert rels[(".text", 8)].addend == -4
        assert rels[(".data", 0)].reloc_type == R_KAH_ABS32

    def test_executable_with_segments(self):
        elf = ElfFile(e_type=ET_EXEC, entry=0x1000, flags=2)
        payload = b"\x90" * 64
        elf.segments.append(
            (ProgramHeader(PT_LOAD, 0, 0x1000, len(payload), len(payload),
                           PF_R | PF_X), payload)
        )
        elf.add_section(
            ElfSection(".text", SHT_PROGBITS, SHF_ALLOC | SHF_EXECINSTR,
                       addr=0x1000, data=payload)
        )
        decoded = ElfFile.read(elf.write())
        assert decoded.entry == 0x1000
        assert decoded.flags == 2
        phdr, data = decoded.segments[0]
        assert phdr.vaddr == 0x1000
        assert data == payload
        # Segment file offset congruent with vaddr modulo alignment.
        assert phdr.offset % phdr.align == phdr.vaddr % phdr.align

    def test_double_roundtrip_stable(self):
        blob1 = sample_object().write()
        blob2 = ElfFile.read(blob1).write()
        assert ElfFile.read(blob2).write() == blob2


class TestErrors:
    def test_not_elf(self):
        with pytest.raises(ElfError):
            ElfFile.read(b"not an elf")

    def test_truncated(self):
        with pytest.raises(ElfError):
            ElfFile.read(ELF_MAGIC)

    def test_duplicate_section_rejected(self):
        elf = ElfFile()
        elf.add_section(ElfSection(".text"))
        with pytest.raises(ElfError):
            elf.add_section(ElfSection(".text"))

    def test_reloc_against_unknown_symbol_rejected(self):
        elf = ElfFile()
        elf.add_section(ElfSection(".text", data=b"\x00" * 4))
        elf.relocations.append(
            ElfRelocation(".text", 0, R_KAH_ABS32, "ghost")
        )
        # "ghost" gets no symbol entry because nothing defines it and
        # to_elf-level bookkeeping is bypassed here.
        with pytest.raises(ElfError):
            elf.write()


class TestProperties:
    @given(
        text=st.binary(min_size=0, max_size=128),
        data=st.binary(min_size=0, max_size=64),
        bss=st.integers(0, 4096),
        symbols=st.lists(
            st.tuples(
                st.text(
                    alphabet="abcdefghijklmnopqrstuvwxyz$_",
                    min_size=1, max_size=12,
                ),
                st.integers(0, 0xFFFF),
                st.booleans(),
            ),
            max_size=8,
            unique_by=lambda t: t[0],
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, text, data, bss, symbols):
        elf = ElfFile(e_type=ET_REL)
        elf.add_section(ElfSection(".text", SHT_PROGBITS, data=text))
        if data:
            elf.add_section(ElfSection(".data", SHT_PROGBITS, data=data))
        if bss:
            elf.add_section(ElfSection(".bss", SHT_NOBITS, nobits_size=bss))
        for name, value, is_global in symbols:
            elf.symbols.append(
                ElfSymbol(
                    name, value,
                    binding=STB_GLOBAL if is_global else STB_LOCAL,
                    section=".text",
                )
            )
        decoded = ElfFile.read(elf.write())
        assert decoded.section(".text").data == text
        if data:
            assert decoded.section(".data").data == data
        if bss:
            assert decoded.section(".bss").size == bss
        for name, value, is_global in symbols:
            sym = decoded.symbol(name)
            assert sym is not None and sym.value == value
            assert sym.is_global == is_global
