"""Statistical sampling tier: schedule, estimator, composition.

Covers the sampling config/estimator math in isolation, end-to-end
sampled runs on a real benchmark (determinism, architectural
equivalence with a pure functional run, accuracy against exact fused
DOE), cancel/resume mid-schedule (the checkpoint carries the sampling
progress), per-shard composition under ``run_parallel``, serve
JobSpec validation, and the run-report schema additions.
"""

import math

import pytest

from repro.cycles.doe import DoeModel
from repro.framework.pipeline import build, run
from repro.framework.sampling import (
    SamplingConfig,
    SamplingResult,
    estimate_cycles,
    merge_sampling_results,
    run_sampled,
    t_quantile_975,
)
from repro.programs import load_program

BENCH = "dct4x4"
SPEC = "2000:10:200"


def _build():
    from tests.conftest import cached_build

    return cached_build(load_program(BENCH), filename=f"{BENCH}.kc")


class TestConfig:
    def test_parse_full(self):
        config = SamplingConfig.parse("2000:50:300:7")
        assert (config.interval, config.period, config.warmup,
                config.seed) == (2000, 50, 300, 7)
        assert config.offset == 7 % 50

    def test_parse_defaults(self):
        config = SamplingConfig.parse("1000:5")
        assert (config.warmup, config.seed) == (0, 0)

    @pytest.mark.parametrize("spec", [
        "2000", "a:b", "0:5", "100:0", "100:5:-1", "1:2:3:4:5", "",
    ])
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            SamplingConfig.parse(spec)

    def test_coerce(self):
        config = SamplingConfig.parse("100:5:10")
        assert SamplingConfig.coerce(config) is config
        assert SamplingConfig.coerce("100:5:10") == config
        assert SamplingConfig.coerce(config.to_doc()) == config
        with pytest.raises(TypeError):
            SamplingConfig.coerce(100)

    def test_spec_roundtrip(self):
        for text in ("100:5:0", "100:5:20", "100:5:20:3"):
            config = SamplingConfig.parse(text)
            assert SamplingConfig.parse(config.spec()) == config

    def test_doc_roundtrip(self):
        config = SamplingConfig(interval=64, period=3, warmup=8, seed=2)
        assert SamplingConfig.from_doc(config.to_doc()) == config


class TestEstimator:
    def test_t_quantiles(self):
        assert t_quantile_975(1) == pytest.approx(12.706)
        assert t_quantile_975(30) == pytest.approx(2.042)
        assert t_quantile_975(1000) == pytest.approx(1.960)
        assert math.isnan(t_quantile_975(0))

    def test_no_intervals(self):
        assert estimate_cycles([], 1000) == (None, None)

    def test_single_interval_no_ci(self):
        estimate, ci = estimate_cycles([[100, 250]], 1000)
        assert estimate == 2500
        assert ci is None

    def test_ratio_estimator_weights_partial_intervals(self):
        # (300 + 100) cycles over (100 + 100) instructions: CPI 2.0.
        estimate, _ = estimate_cycles([[100, 300], [100, 100]], 500)
        assert estimate == 1000

    def test_ci_hand_computed(self):
        intervals = [[100, 150], [100, 250]]  # CPIs 1.5, 2.5
        estimate, ci = estimate_cycles(intervals, 1000)
        assert estimate == 2000
        # stddev of {1.5, 2.5} = sqrt(0.5); se = sqrt(0.5)/sqrt(2) = 0.5
        assert ci == pytest.approx(12.706 * 0.5 * 1000, rel=1e-6)

    def test_zero_length_pairs_ignored(self):
        estimate, ci = estimate_cycles([[0, 0], [100, 200]], 1000)
        assert estimate == 2000
        assert ci is None


class TestMerge:
    def _result(self, intervals, total):
        return SamplingResult(
            config=SamplingConfig.parse("100:5"),
            intervals=intervals,
            total_instructions=total,
        ).finalize()

    def test_estimates_add_ci_quadrature(self):
        a = self._result([[100, 150], [100, 250]], 1000)
        b = self._result([[100, 300], [100, 500]], 2000)
        merged = merge_sampling_results([a, b])
        assert merged.cycles_estimated == (
            a.cycles_estimated + b.cycles_estimated
        )
        assert merged.cycles_ci95 == pytest.approx(
            math.sqrt(a.cycles_ci95 ** 2 + b.cycles_ci95 ** 2), abs=0.002
        )
        assert merged.total_instructions == 3000
        assert len(merged.intervals) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_sampling_results([])
        with pytest.raises(ValueError):
            merge_sampling_results([None])

    def test_doc_roundtrip(self):
        a = self._result([[100, 150], [80, 250]], 900)
        back = SamplingResult.from_doc(a.to_doc())
        assert back.intervals == a.intervals
        assert back.cycles_estimated == a.cycles_estimated
        assert back.config == a.config


def _exact_cycles(built):
    model = DoeModel(issue_width=built.issue_width)
    result = run(built, cycle_model=model, engine="superblock")
    return model.cycles, result


class TestSampledRun:
    def test_estimate_close_and_ci_brackets(self):
        built = _build()
        exact, _ = _exact_cycles(built)
        result = run(
            built,
            cycle_model=DoeModel(issue_width=built.issue_width),
            engine="superblock",
            sampling=SPEC,
        )
        sampled = result.sampling
        assert sampled.cycles_estimated is not None
        error = abs(sampled.cycles_estimated - exact) / exact
        assert error < 0.10, (sampled.cycles_estimated, exact)
        assert (abs(sampled.cycles_estimated - exact)
                <= sampled.cycles_ci95), "CI must bracket the truth"
        assert 0 < sampled.detailed_fraction < 0.5

    def test_deterministic_for_fixed_config(self):
        built = _build()
        runs = [
            run(
                built,
                cycle_model=DoeModel(issue_width=built.issue_width),
                sampling=SPEC,
            ).sampling
            for _ in range(2)
        ]
        assert runs[0].intervals == runs[1].intervals
        assert runs[0].cycles_estimated == runs[1].cycles_estimated
        assert runs[0].cycles_ci95 == runs[1].cycles_ci95

    def test_seed_shifts_schedule(self):
        built = _build()
        by_seed = [
            run(
                built,
                cycle_model=DoeModel(issue_width=built.issue_width),
                sampling=f"2000:10:200:{seed}",
            ).sampling
            for seed in (0, 3)
        ]
        assert by_seed[0].intervals != by_seed[1].intervals

    def test_architectural_state_equals_functional_run(self):
        built = _build()
        functional = run(built, engine="superblock")
        sampled = run(
            built,
            cycle_model=DoeModel(issue_width=built.issue_width),
            sampling=SPEC,
        )
        assert sampled.output == functional.output
        assert sampled.exit_code == functional.exit_code
        assert (sampled.stats.executed_instructions
                == functional.stats.executed_instructions)
        assert (list(sampled.program.state.regs)
                == list(functional.program.state.regs))

    def test_requires_detailed_model(self):
        built = _build()
        with pytest.raises(ValueError, match="detailed cycle model"):
            run(built, sampling=SPEC)

        class _NoResetTiming:
            cycles = 0

        with pytest.raises(ValueError, match="reset_timing"):
            run(built, cycle_model=_NoResetTiming(), sampling=SPEC)

    def test_rejects_per_instruction_hooks(self):
        built = _build()
        with pytest.raises(ValueError, match="incompatible"):
            run(
                built,
                cycle_model=DoeModel(issue_width=built.issue_width),
                sampling=SPEC,
                checkpoint_every=1000,
            )

    def test_events_tag_phases(self):
        from repro.telemetry.stream import EventStream

        built = _build()
        events = EventStream(heartbeat_every=5000)
        run(
            built,
            cycle_model=DoeModel(issue_width=built.issue_width),
            sampling=SPEC,
            events=events,
        )
        phases = {e.get("phase") for e in events.events}
        assert "fast-forward" in phases
        assert "detailed" in phases
        start = next(e for e in events.events if e["type"] == "run-start")
        assert start["sampling"] == "2000:10:200"
        end = next(e for e in events.events if e["type"] == "run-end")
        assert end["cycles_estimated"] is not None

    def test_run_report_schema_v2(self):
        from repro.telemetry.collect import SCHEMA_VERSION

        assert SCHEMA_VERSION == 2
        built = _build()
        result = run(
            built,
            cycle_model=DoeModel(issue_width=built.issue_width),
            sampling=SPEC,
            collect_metrics=True,
        )
        report = result.telemetry
        assert report["schema_version"] == 2
        assert report["cycles_estimated"] == result.sampling.cycles_estimated
        assert report["cycles_ci95"] == result.sampling.cycles_ci95
        block = report["sampling"]
        assert block["interval"] == 2000
        assert block["period"] == 10
        assert block["warmup"] == 200
        assert block["intervals_measured"] == len(result.sampling.intervals)

    def test_non_sampled_report_has_no_sampling_fields(self):
        built = _build()
        result = run(built, collect_metrics=True)
        assert "sampling" not in result.telemetry
        assert "cycles_estimated" not in result.telemetry


class _CancelAfterPolls:
    def __init__(self, polls: int) -> None:
        self.left = polls

    def __call__(self) -> bool:
        self.left -= 1
        return self.left < 0


class TestCancelResume:
    """Satellite: resume-after-cancel must land on the same estimate."""

    def _sampled(self, built, **kwargs):
        return run(
            built,
            cycle_model=DoeModel(issue_width=built.issue_width),
            engine="superblock",
            sampling=SPEC,
            **kwargs,
        )

    def _cancel_and_resume(self, built, polls, tmp_path):
        first = self._sampled(
            built,
            cancel=_CancelAfterPolls(polls),
            cancel_checkpoint_dir=str(tmp_path),
        )
        assert first.cancelled
        assert first.cancel_checkpoint is not None
        assert not first.program.state.halted
        resumed = self._sampled(built, resume_from=first.cancel_checkpoint)
        assert not resumed.cancelled
        return first, resumed

    def test_resume_mid_fast_forward_same_estimate(self, tmp_path):
        built = _build()
        baseline = self._sampled(built)
        first, resumed = self._cancel_and_resume(built, 8, tmp_path)
        # The cancel landed outside a measured interval: no baseline
        # rides in the checkpoint.
        from repro.snapshot import read_checkpoint

        meta = read_checkpoint(first.cancel_checkpoint)["meta"]
        assert "cycles0" not in meta["sampling"]
        assert resumed.sampling.intervals == baseline.sampling.intervals
        assert (resumed.sampling.cycles_estimated
                == baseline.sampling.cycles_estimated)
        assert (resumed.stats.executed_instructions
                == baseline.stats.executed_instructions)
        assert resumed.output == baseline.output

    def test_resume_mid_measured_interval_same_estimate(self, tmp_path):
        built = _build()
        baseline = self._sampled(built)
        # Scan for a poll count whose cancel lands inside a measured
        # interval (the checkpoint then carries the cycles0 baseline).
        from repro.snapshot import read_checkpoint

        for polls in range(2, 40):
            first = self._sampled(
                built,
                cancel=_CancelAfterPolls(polls),
                cancel_checkpoint_dir=str(tmp_path),
            )
            if not first.cancelled:
                continue
            meta = read_checkpoint(first.cancel_checkpoint)["meta"]
            if "cycles0" in meta["sampling"]:
                break
        else:
            pytest.skip("no poll count cancels inside a measured interval")
        resumed = self._sampled(built, resume_from=first.cancel_checkpoint)
        assert resumed.sampling.intervals == baseline.sampling.intervals
        assert (resumed.sampling.cycles_estimated
                == baseline.sampling.cycles_estimated)

    def test_resume_rejects_mismatched_schedule(self, tmp_path):
        built = _build()
        first, _ = None, None
        first = self._sampled(
            built,
            cancel=_CancelAfterPolls(8),
            cancel_checkpoint_dir=str(tmp_path),
        )
        assert first.cancelled
        with pytest.raises(ValueError, match="mix schedules"):
            run(
                built,
                cycle_model=DoeModel(issue_width=built.issue_width),
                sampling="4000:10:200",
                resume_from=first.cancel_checkpoint,
            )


class TestParallelComposition:
    def test_shards_sample_and_merge(self, tmp_path):
        from repro.framework.parallel import run_parallel

        built = _build()
        exact, _ = _exact_cycles(built)
        result = run_parallel(
            built,
            shards=2,
            model="doe",
            processes=1,
            checkpoint_dir=str(tmp_path),
            use_plan_cache=False,
            sampling="1000:5:200",
        )
        merged = result.sampling
        assert merged is not None
        error = abs(merged.cycles_estimated - exact) / exact
        assert error < 0.10, (merged.cycles_estimated, exact)
        assert abs(merged.cycles_estimated - exact) <= merged.cycles_ci95
        per_shard = [
            SamplingResult.from_doc(r["sampling"])
            for r in result.shard_results
        ]
        assert merged.cycles_estimated == sum(
            s.cycles_estimated for s in per_shard
        )
        assert len(merged.intervals) == sum(
            len(s.intervals) for s in per_shard
        )
        assert result.telemetry["cycles_estimated"] == merged.cycles_estimated
        assert result.telemetry["sampling"]["intervals_measured"] == len(
            merged.intervals
        )

    def test_functional_model_rejected(self, tmp_path):
        from repro.framework.parallel import run_parallel

        built = _build()
        with pytest.raises(ValueError, match="detailed cycle model"):
            run_parallel(
                built, shards=2, model="none", processes=1,
                checkpoint_dir=str(tmp_path), use_plan_cache=False,
                sampling="1000:5",
            )


class TestServeSpec:
    def test_sampling_requires_detailed_model(self):
        from repro.serve.protocol import JobSpec, SpecError

        with pytest.raises(SpecError, match="detailed cycle model"):
            JobSpec(program=BENCH, model="ilp",
                    sampling="100:5").validate()
        with pytest.raises(SpecError, match="bad sampling spec"):
            JobSpec(program=BENCH, model="doe",
                    sampling="nope").validate()
        spec = JobSpec(program=BENCH, model="doe", sampling="2000:10:200")
        assert spec.validate() is spec

    def test_execute_job_reports_estimate(self):
        from repro.serve.protocol import JobSpec
        from repro.serve.workers import execute_job

        spec = JobSpec(
            program=BENCH, model="doe", sampling=SPEC,
        ).validate()
        doc = execute_job(
            "job-sampling-test", spec,
            build_cache={}, use_plan_cache=False,
        )
        assert doc["state"] == "done"
        assert doc["cycles_estimated"] is not None
        assert doc["sampling"]["interval"] == 2000
        assert doc["report"]["cycles_estimated"] == doc["cycles_estimated"]


class TestDirectDriver:
    def test_run_sampled_smoke(self):
        """Direct framework.sampling entry point (no pipeline)."""
        from repro.binutils.loader import load_executable

        built = _build()
        program = load_executable(built.elf, built.arch)
        model = DoeModel(issue_width=built.issue_width)
        outcome = run_sampled(program, model, "2000:10:200")
        assert program.state.halted
        assert outcome.result.cycles_estimated is not None
        assert not outcome.cancelled
        assert outcome.stats.executed_instructions > 0

    def test_budget_exhaustion_records_partial(self):
        from repro.binutils.loader import load_executable

        built = _build()
        program = load_executable(built.elf, built.arch)
        model = DoeModel(issue_width=built.issue_width)
        # Budget ends inside the first measured interval (offset 0:
        # measurement starts at instruction 0).
        outcome = run_sampled(program, model, "2000:10",
                              max_instructions=500)
        assert not program.state.halted
        assert outcome.result.intervals == [[500, model.cycles]]
