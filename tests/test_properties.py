"""Cross-cutting property-based tests (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adl.kahrisma import KAHRISMA
from repro.binutils.assembler import Assembler
from repro.cycles.memmodel import Cache, ConnectionLimit, MainMemory
from repro.sim.decoder import decode_instruction
from repro.sim.disasm import format_instruction
from repro.sim.interpreter import Interpreter
from repro.sim.memory import Memory
from repro.sim.state import ProcessorState, TEXT_BASE
from repro.sim.syscalls import Syscalls
from repro.targetgen.optable import build_target

TARGET = build_target(KAHRISMA)
RISC = TARGET.optable(0)

#: Operations whose operands are safe to randomise for execution: no
#: control flow, no memory, no simulator services.
_PURE_ALU = [
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt",
    "sltu", "mul", "mulh", "div", "rem",
]
_PURE_IMM = [
    "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti",
    "sltiu",
]


@st.composite
def random_alu_op(draw):
    """One random ALU operation as (mnemonic, field values)."""
    if draw(st.booleans()):
        name = draw(st.sampled_from(_PURE_ALU))
        return name, {
            "rd": draw(st.integers(1, 27)),
            "rs1": draw(st.integers(0, 27)),
            "rs2": draw(st.integers(0, 27)),
        }
    name = draw(st.sampled_from(_PURE_IMM))
    entry = RISC.by_name[name]
    field = entry.op.field("imm")
    if field.signed:
        imm = draw(st.integers(-(1 << 13), (1 << 13) - 1))
    else:
        imm = draw(st.integers(0, (1 << 14) - 1))
    return name, {
        "rd": draw(st.integers(1, 27)),
        "rs1": draw(st.integers(0, 27)),
        "imm": imm,
    }


class TestAssemblerDisassemblerRoundTrip:
    @given(ops=st.lists(random_alu_op(), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_encode_disasm_reassemble(self, ops):
        """encode → disassemble → assemble reproduces the exact bytes."""
        words = [RISC.by_name[name].encode(vals) for name, vals in ops]
        mem = Memory()
        for i, word in enumerate(words):
            mem.store4(0x1000 + 4 * i, word)
        lines = []
        for i in range(len(words)):
            dec = decode_instruction(RISC, mem, 0x1000 + 4 * i)
            lines.append("    " + format_instruction(dec))
        obj = Assembler(KAHRISMA).assemble("\n".join(lines), "rt.s")
        reassembled = bytes(obj.sections[".text"])
        original = b"".join(w.to_bytes(4, "little") for w in words)
        assert reassembled == original


class TestInterpreterLoopVariantEquivalence:
    @given(ops=st.lists(random_alu_op(), min_size=1, max_size=30),
           seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_all_variants_same_final_state(self, ops, seed):
        words = [RISC.by_name[name].encode(vals) for name, vals in ops]
        words.append(RISC.by_name["halt"].encode({}))

        def run_variant(use_cache, use_pred, full=False):
            state = ProcessorState(KAHRISMA)
            rng = seed
            for i in range(28):
                rng = (rng * 1103515245 + 12345) & 0xFFFFFFFF
                state.regs[i] = rng if i else 0
            for i, word in enumerate(words):
                state.mem.store4(TEXT_BASE + 4 * i, word)
            state.ip = TEXT_BASE
            state.setup_stack()
            Syscalls().install(state)
            interp = Interpreter(
                state,
                use_decode_cache=use_cache,
                use_prediction=use_pred,
                ip_history=8 if full else 0,
            )
            interp.run(max_instructions=1000)
            return list(state.regs)

        reference = run_variant(True, True)
        assert run_variant(True, False) == reference
        assert run_variant(False, False) == reference
        assert run_variant(True, True, full=True) == reference


class TestMemoryModelProperties:
    @given(
        accesses=st.lists(
            st.tuples(
                st.integers(0, 1 << 16),   # address
                st.booleans(),             # write?
                st.integers(0, 1000),      # start cycle
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_completion_never_before_start_plus_delay(self, accesses):
        cache = Cache(size=256, line_size=32, assoc=2, delay=3,
                      sub=MainMemory(10))
        for addr, is_write, start in accesses:
            completion = cache.access(addr, is_write, 0, start)
            assert completion >= start + cache.delay

    @given(
        addresses=st.lists(st.integers(0, 1 << 12), min_size=2,
                           max_size=30)
    )
    @settings(max_examples=40, deadline=None)
    def test_repeat_access_is_hit(self, addresses):
        """Accessing the same address twice in a row always hits."""
        cache = Cache(size=2048, line_size=32, assoc=4,
                      sub=MainMemory(18))
        cycle = 0
        for addr in addresses:
            cache.access(addr, False, 0, cycle)
            misses_before = cache.misses
            cache.access(addr, False, 0, cycle + 100)
            assert cache.misses == misses_before
            cycle += 200

    @given(
        starts=st.lists(st.integers(0, 100), min_size=1, max_size=40),
        ports=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_connection_limit_respects_port_count(self, starts, ports):
        limit = ConnectionLimit(ports, MainMemory(0))
        for start in starts:
            limit.access(0, False, 0, start)
        # No cycle may carry more reservations than ports.
        assert all(count <= ports for count in limit._usage.values())


class TestCompilerWidthEquivalence:
    @given(
        a=st.integers(-500, 500),
        b=st.integers(-500, 500),
        shift=st.integers(0, 7),
    )
    @settings(max_examples=15, deadline=None)
    def test_risc_and_vliw_agree(self, kc, simulate, a, b, shift):
        source = (
            "int f(int a, int b, int s) {\n"
            "    int p = a * b;\n"
            "    int q = (a << s) ^ (b >> 1);\n"
            "    int r = a % (b * b + 1);\n"
            "    return p + q - r;\n"
            "}\n"
            f"int main() {{ print_int(f({a}, {b}, {shift})); return 0; }}\n"
        )
        risc_out, _ = simulate(kc(source, isa="risc"))
        vliw_out, _ = simulate(kc(source, isa="vliw8"))
        assert risc_out.output == vliw_out.output
