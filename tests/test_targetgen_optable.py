"""Operation table: detection, decode/encode, cross-ISA sharing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adl.kahrisma import KAHRISMA, OPERATIONS
from repro.targetgen.optable import OperationTable, build_target


class TestDetection:
    def test_every_operation_detected_from_its_encoding(self, risc_table):
        for entry in risc_table.entries:
            values = {
                f.name: 0 for f in entry.value_fields
            }
            word = entry.encode(values)
            detected = risc_table.detect(word)
            assert detected is not None
            assert detected.op.name == entry.op.name

    def test_undefined_opcode_returns_none(self, risc_table):
        assert risc_table.detect(0xEE000000) is None

    def test_nonzero_pad_bits_fail_detection(self, risc_table):
        # nop requires the pad field to be zero.
        assert risc_table.detect(0x00000001) is None

    def test_opcode_fast_path_built(self, risc_table):
        assert risc_table._opcode_index is not None


class TestDecodeEncode:
    @given(
        name=st.sampled_from([op.name for op in OPERATIONS]),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_random_fields(self, risc_table, name, data):
        entry = risc_table.by_name[name]
        values = {}
        for f in entry.value_fields:
            if f.signed:
                lo, hi = -(1 << (f.width - 1)), (1 << (f.width - 1)) - 1
            else:
                lo, hi = 0, (1 << f.width) - 1
            values[f.name] = data.draw(st.integers(lo, hi))
        word = entry.encode(values)
        assert entry.decode(word) == tuple(
            values[f.name] for f in entry.value_fields
        )
        detected = risc_table.detect(word)
        assert detected is not None and detected.op.name == name

    def test_src_dst_value_indices(self, risc_table):
        add = risc_table.by_name["add"]
        vals = add.decode(add.encode({"rd": 5, "rs1": 6, "rs2": 7}))
        assert [vals[i] for i in add.src_value_indices] == [6, 7]
        assert [vals[i] for i in add.dst_value_indices] == [5]


class TestTargetDescription:
    def test_one_table_per_isa(self, target):
        assert sorted(target.optables) == [0, 1, 2, 3, 4]

    def test_sim_functions_shared_across_isas(self, target):
        risc = target.optable(0)
        vliw8 = target.optable(4)
        assert risc.by_name["add"].sim_fn is vliw8.by_name["add"].sim_fn

    def test_register_table(self, target):
        assert target.register_table[0] == "r0"
        assert target.register_table[31] == "r31"
        assert len(target.register_table) == 32

    def test_build_target_memoised(self):
        assert build_target(KAHRISMA) is build_target(KAHRISMA)
