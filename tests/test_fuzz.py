"""Cross-engine differential fuzzing rig (``repro.fuzz``).

Four layers:

* generator units — determinism, seed sensitivity, feature knobs, and
  the validity guarantee (every generated program assembles and links
  through the real toolchain);
* differential runner — a fixed-seed sweep finds zero divergences,
  and an *injected* register fault is caught and localized (the rig's
  teeth, exercised without the slow full-matrix self-test);
* shrinker — a failing program minimizes to a smaller program that
  still fails, and never "minimizes" to a non-failing one;
* corpus — the checked-in reproducers under ``tests/corpus/`` replay
  green over the full engine x model x accounting matrix.  This is
  the forever-guard: a divergence here is a real engine bug.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import cli
from repro.fuzz import (
    GenConfig,
    assemble_fuzz,
    default_matrix,
    generate_program,
    load_corpus,
    replay_entry,
    run_differential,
    save_reproducer,
    shrink,
)
from repro.fuzz.runner import EngineConfig, run_config, self_test

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

#: Cheap sub-matrix for hot loops (no AOT translation cost): the
#: reference interpreter plus every other interactive engine and the
#: superblock engine's fused/observed pairs.
FAST_CONFIGS = [
    EngineConfig("nocache", "ilp"),
    EngineConfig("cache", "doe"),
    EngineConfig("predict", "aie"),
    EngineConfig("superblock", "doe", True),
    EngineConfig("superblock", "doe", False),
]


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = generate_program(42, GenConfig(smc=True))
        b = generate_program(42, GenConfig(smc=True))
        assert a.render() == b.render()
        assert a.features == b.features

    def test_seed_sensitivity(self):
        a = generate_program(1, GenConfig())
        b = generate_program(2, GenConfig())
        assert a.render() != b.render()

    def test_feature_knobs(self):
        p = generate_program(5, GenConfig(smc=True))
        assert "smc" in p.features
        assert "isa-switch" in p.features
        plain = generate_program(
            5,
            GenConfig(loops=False, branches=False, indirect=False,
                      isa_switches=False, smc=False, output=False),
        )
        assert plain.features == []

    @pytest.mark.parametrize("seed", [0, 1, 7, 99, 1234])
    def test_every_program_assembles(self, seed):
        program = generate_program(seed, GenConfig(smc=seed % 2 == 1))
        built = assemble_fuzz(program.render(), name=f"<seed {seed}>")
        # ... and terminates well under the budget, by construction.
        outcome = run_config(built, EngineConfig("nocache"))
        assert outcome.error is None
        assert outcome.halted
        assert 0 < outcome.instructions < 100_000


class TestRunner:
    def test_default_matrix_shape(self):
        configs = default_matrix()
        assert configs[0].engine == "nocache"  # the reference oracle
        labels = [c.label for c in configs]
        assert len(labels) == len(set(labels))
        assert "superblock/doe/fused" in labels
        assert "superblock/doe/observed" in labels
        assert "aot/doe/fused" in labels
        # An observing model has no AOT representation: never emitted.
        assert not any("aot" in l and "observed" in l for l in labels)

    @pytest.mark.parametrize("seed", [1234, 1238])
    def test_clean_sweep_no_divergence(self, seed):
        program = generate_program(seed, GenConfig(smc=seed == 1238))
        built = assemble_fuzz(program.render())
        result = run_differential(built, FAST_CONFIGS)
        assert result.ok, [d.detail for d in result.divergences]

    def test_injected_fault_is_caught_and_localized(self):
        program = generate_program(7, GenConfig(smc=True))
        built = assemble_fuzz(program.render())
        inject, result = self_test(
            built, FAST_CONFIGS, victim="superblock/doe/fused"
        )
        assert not result.ok
        div = result.divergences[0]
        assert div.kind == "architectural"
        assert div.config.label == "superblock/doe/fused"
        assert div.forensics is not None
        assert div.forensics["first_divergent_instruction"] is not None
        assert div.first_divergent_pc is not None


class TestShrinker:
    def _failing_setup(self):
        program = generate_program(7, GenConfig(smc=True))
        built = assemble_fuzz(program.render())
        inject, result = self_test(
            built, FAST_CONFIGS, victim="superblock/doe/fused"
        )
        pair = [FAST_CONFIGS[0], result.divergences[0].config]

        def still_fails(candidate):
            b = assemble_fuzz(candidate.render())
            return not run_differential(
                b, pair, inject=inject,
                inject_into="superblock/doe/fused", escalate=False,
            ).ok

        return program, still_fails

    def test_shrinks_and_still_fails(self):
        program, still_fails = self._failing_setup()
        small = shrink(program, still_fails, max_attempts=40)
        assert len(small.segments) <= len(program.segments)
        assert len(small.render()) <= len(program.render())
        assert still_fails(small)

    def test_never_shrinks_a_passing_program_away(self):
        program = generate_program(3, GenConfig())
        small = shrink(program, lambda p: False, max_attempts=10)
        assert small.render() == program.render()


class TestCorpus:
    def test_checked_in_entries_cover_required_features(self):
        entries = load_corpus(CORPUS_DIR)
        assert len(entries) >= 3
        features = [set(e["features"]) for e in entries]
        assert any("smc" in f for f in features)
        assert any("isa-switch" in f for f in features)

    @pytest.mark.parametrize(
        "entry",
        load_corpus(CORPUS_DIR),
        ids=lambda e: os.path.basename(e["path"]),
    )
    def test_replay_green_over_full_matrix(self, entry):
        result = replay_entry(entry)
        assert result.ok, [d.detail for d in result.divergences]
        assert len(result.outcomes) == len(default_matrix())

    def test_save_load_roundtrip(self, tmp_path):
        program = generate_program(11, GenConfig(smc=True))
        path = save_reproducer(
            str(tmp_path), program, note="roundtrip",
            divergence={"kind": "architectural", "detail": "x"},
        )
        (entry,) = load_corpus(str(tmp_path))
        assert entry["path"] == path
        assert entry["seed"] == 11
        assert entry["asm"] == program.render()
        assert GenConfig.from_doc(entry["config"]) == program.config
        assert entry["divergence"]["kind"] == "architectural"

    def test_unknown_schema_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text(
            json.dumps({"schema": "other", "asm": ""})
        )
        with pytest.raises(ValueError, match="unknown corpus schema"):
            load_corpus(str(tmp_path))


class TestFuzzCli:
    ENGINES = "nocache,cache,predict,superblock"

    def test_small_sweep_exits_zero(self, capsys):
        rc = cli.main([
            "fuzz", "--seed", "1234", "--count", "2",
            "--engines", self.ENGINES, "--models", "ilp,doe",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 divergence(s)" in out

    def test_replay_corpus_exits_zero(self, capsys):
        rc = cli.main([
            "fuzz", "--replay", CORPUS_DIR,
            "--engines", self.ENGINES, "--models", "ilp",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "replayed" in out and "0 divergence(s)" in out

    def test_unknown_engine_rejected(self, capsys):
        rc = cli.main(["fuzz", "--engines", "warp"])
        assert rc == 2
        assert "unknown engine" in capsys.readouterr().err
