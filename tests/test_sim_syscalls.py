"""C standard library emulation (Section V-E)."""

import pytest

from repro.adl.kahrisma import KAHRISMA, REG_ARG_FIRST, REG_RV
from repro.sim.errors import SimulationError
from repro.sim.state import ProcessorState
from repro.sim.syscalls import Syscalls


@pytest.fixture()
def env():
    state = ProcessorState(KAHRISMA)
    syscalls = Syscalls(heap_base=0x40000)
    syscalls.install(state)
    return state, syscalls


def call(state, syscalls, ident, *args):
    for i, arg in enumerate(args):
        state.regs[REG_ARG_FIRST + i] = arg & 0xFFFFFFFF
    state.simop(ident)
    return state.regs[REG_RV]


class TestOutput:
    def test_putchar(self, env):
        state, sys_ = env
        assert call(state, sys_, 1, ord("A")) == ord("A")
        assert sys_.output_text() == "A"

    def test_puts_appends_newline(self, env):
        state, sys_ = env
        state.mem.store_cstring(0x1000, b"hi")
        call(state, sys_, 3, 0x1000)
        assert sys_.output_text() == "hi\n"

    def test_print_int_signed(self, env):
        state, sys_ = env
        call(state, sys_, 4, -42)
        assert sys_.output_text() == "-42"

    def test_print_uint(self, env):
        state, sys_ = env
        call(state, sys_, 5, 0xFFFFFFFF)
        assert sys_.output_text() == "4294967295"

    def test_print_hex(self, env):
        state, sys_ = env
        call(state, sys_, 6, 0xDEADBEEF)
        assert sys_.output_text() == "deadbeef"

    def test_write(self, env):
        state, sys_ = env
        state.mem.store_bytes(0x1000, b"xyz")
        assert call(state, sys_, 17, 0x1000, 3) == 3
        assert sys_.output_text() == "xyz"


class TestExitAndInput:
    def test_exit_sets_code_and_halts(self, env):
        state, sys_ = env
        call(state, sys_, 0, 3)
        assert state.halted
        assert state.exit_code == 3

    def test_exit_code_signed(self, env):
        state, sys_ = env
        call(state, sys_, 0, -1)
        assert state.exit_code == -1

    def test_getchar_stream_then_eof(self):
        state = ProcessorState(KAHRISMA)
        sys_ = Syscalls(input_data=b"ab")
        sys_.install(state)
        assert call(state, sys_, 2) == ord("a")
        assert call(state, sys_, 2) == ord("b")
        assert call(state, sys_, 2) == 0xFFFFFFFF  # EOF


class TestHeap:
    def test_malloc_bump_and_alignment(self, env):
        state, sys_ = env
        first = call(state, sys_, 7, 5)
        second = call(state, sys_, 7, 5)
        assert first == 0x40000
        assert second == 0x40008  # rounded to 8
        assert second > first

    def test_malloc_out_of_memory_returns_null(self, env):
        state, sys_ = env
        assert call(state, sys_, 7, 0x7FFFFFFF) == 0

    def test_free_is_noop(self, env):
        state, sys_ = env
        ptr = call(state, sys_, 7, 16)
        call(state, sys_, 8, ptr)  # must not raise


class TestStringMemory:
    def test_memcpy(self, env):
        state, sys_ = env
        state.mem.store_bytes(0x1000, b"abcdef")
        assert call(state, sys_, 9, 0x2000, 0x1000, 6) == 0x2000
        assert state.mem.load_bytes(0x2000, 6) == b"abcdef"

    def test_memset(self, env):
        state, sys_ = env
        call(state, sys_, 10, 0x3000, 0xAB, 8)
        assert state.mem.load_bytes(0x3000, 8) == b"\xab" * 8

    def test_strlen(self, env):
        state, sys_ = env
        state.mem.store_cstring(0x1000, b"kahrisma")
        assert call(state, sys_, 11, 0x1000) == 8

    def test_strcmp(self, env):
        state, sys_ = env
        state.mem.store_cstring(0x1000, b"abc")
        state.mem.store_cstring(0x2000, b"abd")
        result = call(state, sys_, 12, 0x1000, 0x2000)
        assert result == 0xFFFFFFFF  # -1
        assert call(state, sys_, 12, 0x1000, 0x1000) == 0


class TestMisc:
    def test_rand_deterministic(self):
        state_a = ProcessorState(KAHRISMA)
        sys_a = Syscalls()
        sys_a.install(state_a)
        state_b = ProcessorState(KAHRISMA)
        sys_b = Syscalls()
        sys_b.install(state_b)
        seq_a = [call(state_a, sys_a, 13) for _ in range(5)]
        seq_b = [call(state_b, sys_b, 13) for _ in range(5)]
        assert seq_a == seq_b
        assert all(0 <= v <= 0x7FFF for v in seq_a)

    def test_srand_reseeds(self, env):
        state, sys_ = env
        call(state, sys_, 14, 123)
        first = call(state, sys_, 13)
        call(state, sys_, 14, 123)
        assert call(state, sys_, 13) == first

    def test_abs(self, env):
        state, sys_ = env
        assert call(state, sys_, 16, -5) == 5
        assert call(state, sys_, 16, 5) == 5

    def test_clock_uses_source(self, env):
        state, sys_ = env
        assert call(state, sys_, 15) == 0
        sys_.clock_source = lambda: 777
        assert call(state, sys_, 15) == 777

    def test_unknown_simop_raises(self, env):
        state, sys_ = env
        with pytest.raises(SimulationError):
            state.simop(99)
