"""Tests of the concrete KAHRISMA architecture description."""

import pytest

from repro.adl.kahrisma import (
    ISA_RISC,
    ISA_VLIW2,
    ISA_VLIW4,
    ISA_VLIW6,
    ISA_VLIW8,
    KAHRISMA,
    OPERATIONS,
    REG_RA,
    REG_SP,
    REG_ZERO,
)
from repro.adl.validate import check_architecture, validate_architecture


class TestArchitectureShape:
    def test_validates_cleanly(self):
        check_architecture(KAHRISMA)
        assert validate_architecture(KAHRISMA) == []

    def test_five_isas_with_expected_widths(self):
        widths = {isa.name: isa.issue_width for isa in KAHRISMA.isas}
        assert widths == {
            "risc": 1, "vliw2": 2, "vliw4": 4, "vliw6": 6, "vliw8": 8,
        }

    def test_isa_identifiers_match_switchtarget_numbers(self):
        assert KAHRISMA.isa(ISA_RISC).name == "risc"
        assert KAHRISMA.isa(ISA_VLIW2).name == "vliw2"
        assert KAHRISMA.isa(ISA_VLIW4).name == "vliw4"
        assert KAHRISMA.isa(ISA_VLIW6).name == "vliw6"
        assert KAHRISMA.isa(ISA_VLIW8).name == "vliw8"

    def test_resources_scale_with_width(self):
        for isa in KAHRISMA.isas:
            assert isa.resources == isa.issue_width

    def test_register_conventions(self):
        rf = KAHRISMA.register_file
        assert len(rf) == 32
        assert rf.zero_register == REG_ZERO
        assert rf.by_role("sp")[0].index == REG_SP
        assert rf.by_role("ra")[0].index == REG_RA
        assert len(rf.by_role("arg")) == 4
        assert len(rf.by_role("saved")) == 8


class TestOperationSet:
    def test_opcode_bytes_unique(self):
        opcodes = [op.field("opcode").const for op in OPERATIONS]
        assert len(set(opcodes)) == len(opcodes)

    @pytest.mark.parametrize(
        "name,kind",
        [
            ("add", "alu"), ("lw", "load"), ("sw", "store"),
            ("beq", "branch"), ("j", "branch"), ("jal", "branch"),
            ("switchtarget", "switch"), ("simop", "simop"),
            ("nop", "nop"), ("halt", "halt"),
        ],
    )
    def test_kinds(self, name, kind):
        isa = KAHRISMA.isa(ISA_RISC)
        assert isa.operation(name).kind == kind

    def test_delays(self):
        isa = KAHRISMA.isa(ISA_RISC)
        assert isa.operation("add").delay == 1
        assert isa.operation("mul").delay == 3
        assert isa.operation("div").delay == 10

    def test_jal_implicitly_writes_link_register(self):
        isa = KAHRISMA.isa(ISA_RISC)
        assert REG_RA in isa.operation("jal").implicit_writes

    def test_memory_ops_use_mem_fu(self):
        isa = KAHRISMA.isa(ISA_RISC)
        for name in ("lw", "lh", "lb", "sw", "sh", "sb"):
            assert isa.operation(name).fu_class == "mem"

    def test_all_isas_share_operation_tuple(self):
        first = KAHRISMA.isas[0].operations
        for isa in KAHRISMA.isas:
            assert isa.operations is first
