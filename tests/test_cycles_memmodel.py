"""Memory hierarchy approximation (Section VI-D): hand-computed delays."""

import pytest

from repro.cycles.memmodel import (
    Cache,
    ConnectionLimit,
    HierarchyConfig,
    MainMemory,
    build_hierarchy,
    find_cache,
)


class TestMainMemory:
    def test_fixed_delay(self):
        mem = MainMemory(delay=18)
        assert mem.access(0x1000, False, 0, 100) == 118
        assert mem.access(0x1000, True, 0, 0) == 18
        assert mem.accesses == 2


class TestCache:
    def make(self, **kwargs):
        defaults = dict(size=2048, line_size=32, assoc=4, delay=3,
                        sub=MainMemory(18))
        defaults.update(kwargs)
        return Cache(**defaults)

    def test_miss_then_hit_delays(self):
        cache = self.make()
        # Miss: start+delay, +18 memory, +delay again to fill the line.
        completion = cache.access(0x1000, False, 0, 0)
        assert completion == 3 + 18 + 3
        assert cache.misses == 1
        # Hit on the same line afterwards.
        completion = cache.access(0x1004, False, 0, 100)
        assert completion == 103
        assert cache.hits == 1

    def test_hit_cannot_complete_before_line_fill(self):
        """Out-of-order calls: completion >= the line's write cycle."""
        cache = self.make()
        fill = cache.access(0x1000, False, 0, 50)  # fills at 50+24=74
        assert fill == 74
        # A logically later access queried with an *earlier* start.
        completion = cache.access(0x1000, False, 0, 10)
        assert completion == 74  # clamped to the fill cycle

    def test_lru_eviction(self):
        # Direct-mapped-ish: 2 sets, assoc 1, line 32 -> size 64.
        cache = self.make(size=64, assoc=1)
        cache.access(0x000, False, 0, 0)     # set 0
        cache.access(0x040, False, 0, 100)   # set 0, evicts 0x000
        assert cache.misses == 2
        cache.access(0x000, False, 0, 200)   # miss again
        assert cache.misses == 3

    def test_lru_keeps_recently_used(self):
        # 1 set, assoc 2.
        cache = self.make(size=64, assoc=2, line_size=32)
        cache.access(0x00, False, 0, 0)    # A
        cache.access(0x20, False, 0, 50)   # B
        cache.access(0x00, False, 0, 100)  # A hit (refresh LRU)
        cache.access(0x40, False, 0, 150)  # C evicts B (LRU)
        assert cache.access(0x00, False, 0, 200) == 203  # A still resident
        assert cache.miss_rate < 1.0

    def test_writeback_costs_second_subaccess(self):
        sub = MainMemory(18)
        cache = self.make(size=64, assoc=1, sub=sub)
        cache.access(0x000, True, 0, 0)    # dirty line in set 0
        before = sub.accesses
        completion = cache.access(0x040, False, 0, 100)
        # fill + write-back = two memory accesses
        assert sub.accesses == before + 2
        assert completion == 100 + 3 + 18 + 18 + 3
        assert cache.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        sub = MainMemory(18)
        cache = self.make(size=64, assoc=1, sub=sub)
        cache.access(0x000, False, 0, 0)
        before = sub.accesses
        cache.access(0x040, False, 0, 100)
        assert sub.accesses == before + 1
        assert cache.writebacks == 0

    def test_write_hit_marks_dirty(self):
        sub = MainMemory(18)
        cache = self.make(size=64, assoc=1, sub=sub)
        cache.access(0x000, False, 0, 0)    # clean fill
        cache.access(0x004, True, 0, 50)    # write hit -> dirty
        cache.access(0x040, False, 0, 100)  # evict: must write back
        assert cache.writebacks == 1

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Cache(size=100, line_size=32, assoc=4)

    def test_reset_clears_state(self):
        cache = self.make()
        cache.access(0x1000, True, 0, 0)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.access(0x1000, False, 0, 0) == 24  # miss again


class TestConnectionLimit:
    def test_port_conflict_pushes_start(self):
        limit = ConnectionLimit(1, MainMemory(0))
        first = limit.access(0, False, 0, 10)
        second = limit.access(4, False, 1, 10)
        # Same start cycle, one port: the second access slips.
        assert first == 10
        assert second == 11

    def test_two_ports_allow_two_per_cycle(self):
        limit = ConnectionLimit(2, MainMemory(10))
        a = limit.access(0, False, 0, 5)
        b = limit.access(4, False, 1, 5)
        c = limit.access(8, False, 2, 5)
        assert a == 15 and b == 15
        assert c == 16  # third access pushed to cycle 6

    def test_blocking_port_reserves_completion(self):
        """The paper's wording: the completion cycle also needs a free
        port — a blocking array sustains one access per two cycles."""
        limit = ConnectionLimit(1, MainMemory(0), reserve_completion=True)
        first = limit.access(0, False, 0, 10)
        assert first == 11  # start at 10, completion slot pushed to 11
        second = limit.access(4, False, 1, 10)
        assert second > first

    def test_pipelined_sustains_one_per_cycle(self):
        limit = ConnectionLimit(1, MainMemory(3))
        completions = [limit.access(4 * i, False, 0, 0) for i in range(4)]
        assert completions == [3, 4, 5, 6]

    def test_blocking_sustains_one_per_two_cycles(self):
        limit = ConnectionLimit(1, MainMemory(3), reserve_completion=True)
        completions = [limit.access(4 * i, False, 0, 0) for i in range(4)]
        # starts 0,1,2,4... each access consumes two port slots.
        assert completions[-1] >= 7

    def test_ports_validation(self):
        with pytest.raises(ValueError):
            ConnectionLimit(0, MainMemory(1))

    def test_stall_counter(self):
        limit = ConnectionLimit(1, MainMemory(0))
        limit.access(0, False, 0, 0)
        limit.access(0, False, 0, 0)
        assert limit.stalls > 0

    def test_reset(self):
        limit = ConnectionLimit(1, MainMemory(5))
        limit.access(0, False, 0, 0)
        limit.reset()
        assert limit.stalls == 0
        assert limit.access(0, False, 0, 0) == 5


class TestHierarchy:
    def test_paper_configuration(self):
        chain = build_hierarchy(HierarchyConfig())
        assert isinstance(chain, ConnectionLimit)
        l1 = find_cache(chain, "L1")
        l2 = find_cache(chain, "L2")
        assert l1.size == 2048 and l1.assoc == 4 and l1.delay == 3
        assert l2.size == 256 * 1024 and l2.delay == 6
        assert isinstance(l2.sub, MainMemory) and l2.sub.delay == 18

    def test_l1_hit_l2_hit_memory_chain(self):
        chain = build_hierarchy(HierarchyConfig())
        l1 = find_cache(chain, "L1")
        l2 = find_cache(chain, "L2")
        chain.access(0x1000, False, 0, 0)  # cold: misses both
        assert l1.misses == 1 and l2.misses == 1
        chain.access(0x1000, False, 0, 100)  # L1 hit
        assert l1.hits == 1 and l2.accesses == 1

    def test_find_cache_unknown(self):
        chain = build_hierarchy(HierarchyConfig())
        assert find_cache(chain, "L3") is None
