"""Generated simulator-module source: emission and equivalence."""

import random

from repro.adl.kahrisma import KAHRISMA
from repro.sim.memory import Memory
from repro.targetgen.codegen import (
    generate_simulator_module,
    load_generated_module,
    write_simulator_module,
)
from repro.targetgen.optable import build_target


class _MiniState:
    def __init__(self):
        self.regs = [0] * 32
        self.mem = Memory()
        self.halted = False

    def switch_isa(self, isa):
        self.switched = isa

    def simop(self, ident):
        return None


class TestGeneratedModule:
    def test_module_loads(self):
        source = generate_simulator_module(KAHRISMA)
        ns = load_generated_module(source)
        assert sorted(ns.OPERATION_TABLES) == [0, 1, 2, 3, 4]
        assert ns.REGISTER_TABLE[31] == "r31"
        assert ns.ISA_ISSUE_WIDTHS == {0: 1, 1: 2, 2: 4, 3: 6, 4: 8}

    def test_table_entries_carry_paper_fields(self):
        """Each entry has name, size, fields, implicit regs, sim fn."""
        ns = load_generated_module(generate_simulator_module(KAHRISMA))
        size, fields, implicit, fn = ns.OPERATION_TABLES[0]["jal"]
        assert size == 4
        assert any(name == "imm" for name, *_rest in fields)
        assert implicit == ((), (31,))
        assert callable(fn)

    def test_write_module_to_disk(self, tmp_path):
        path = tmp_path / "gen_sim.py"
        source = write_simulator_module(KAHRISMA, str(path))
        assert path.read_text() == source

    def test_emitted_functions_match_inmemory(self):
        """The emitted source and the in-memory tables are one semantics."""
        ns = load_generated_module(generate_simulator_module(KAHRISMA))
        target = build_target(KAHRISMA)
        table = target.optable(0)
        rng = random.Random(7)
        for entry in table.entries:
            if entry.op.kind in ("simop", "switch", "halt"):
                continue
            _size, _fields, _implicit, gen_fn = (
                ns.OPERATION_TABLES[0][entry.op.name]
            )
            for _ in range(10):
                values = {}
                for f in entry.value_fields:
                    if f.role in ("reg_dst", "reg_src"):
                        values[f.name] = rng.randrange(1, 32)
                    elif f.signed:
                        values[f.name] = rng.randrange(
                            -(1 << (f.width - 1)), 1 << (f.width - 1)
                        )
                    else:
                        values[f.name] = rng.randrange(1 << min(f.width, 12))
                vals = entry.decode(entry.encode(values))

                state_a, state_b = _MiniState(), _MiniState()
                for i in range(32):
                    value = rng.getrandbits(16)
                    state_a.regs[i] = value
                    state_b.regs[i] = value
                addr = rng.randrange(0, 1 << 16) & ~3
                state_a.mem.store4(addr, 0x12345678)
                state_b.mem.store4(addr, 0x12345678)

                wr_a, mw_a = [], []
                wr_b, mw_b = [], []
                ret_a = entry.sim_fn(state_a, vals, 0, 4, wr_a, mw_a)
                ret_b = gen_fn(state_b, vals, 0, 4, wr_b, mw_b)
                assert (ret_a, wr_a, mw_a) == (ret_b, wr_b, mw_b), \
                    entry.op.name
