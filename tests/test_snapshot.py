"""Checkpoint/restore subsystem (``repro.snapshot``).

The determinism contract under test (``docs/checkpointing.md``): a run
resumed from a checkpoint reaches the same architectural end state —
registers, memory, program output, exit code, architectural statistics
and restored cycle-model counters — as the same run left uninterrupted.
"""

from __future__ import annotations

import os

import pytest

from repro.adl.kahrisma import KAHRISMA
from repro.cycles.doe import DoeModel
from repro.cycles.branch import BranchModel, GsharePredictor
from repro.framework import pipeline
from repro.programs import load_program, program_names
from repro.sim.memory import Memory, PAGE_SIZE
from repro.sim.stats import SimStats
from repro.snapshot import (
    CheckpointError,
    IncrementalPageEncoder,
    decode_checkpoint,
    decode_memory,
    encode_checkpoint,
    encode_memory,
    memory_digest,
    restore_run,
    snapshot_run,
)

def build_benchmark_cached(kc, name):
    return kc(load_program(name), filename=f"{name}.kc")


def architectural_end_state(result):
    return {
        "regs": list(result.program.state.regs),
        "ip": result.program.state.ip,
        "isa": result.program.state.isa_id,
        "memory": memory_digest(result.program.state.mem),
        "output": result.output,
        "exit_code": result.exit_code,
        "stats": result.stats.architectural_dict(),
    }


# -- format layer ---------------------------------------------------------


class TestFormat:
    def test_round_trip(self):
        payload = {"arch": "x", "state": {"ip": 4}, "n": [1, 2, 3]}
        assert decode_checkpoint(encode_checkpoint(payload)) == payload

    def test_identical_payloads_encode_identically(self):
        a = {"b": 1, "a": {"y": 2, "x": 3}}
        b = {"a": {"x": 3, "y": 2}, "b": 1}
        assert encode_checkpoint(a) == encode_checkpoint(b)

    def test_corruption_detected(self):
        data = encode_checkpoint({"k": "value"})
        corrupted = data.replace(b"value", b"VALUE")
        with pytest.raises(CheckpointError, match="digest"):
            decode_checkpoint(corrupted)

    def test_not_json(self):
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            decode_checkpoint(b"\x7fELF junk")

    def test_wrong_schema(self):
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            decode_checkpoint(b'{"schema": "something-else"}')

    def test_unsupported_version(self):
        import json

        data = json.loads(encode_checkpoint({"k": 1}).decode())
        data["version"] = 999
        with pytest.raises(CheckpointError, match="version"):
            decode_checkpoint(json.dumps(data).encode())


# -- memory capture -------------------------------------------------------


class TestMemoryCapture:
    def test_round_trip_skips_zero_pages(self):
        mem = Memory()
        mem.store4(0x1000, 0xDEADBEEF)
        mem.store1(0x5000, 7)
        mem.store4(0x9000, 1)
        mem.store4(0x9000, 0)  # page becomes all-zero again
        pages = encode_memory(mem)
        assert sorted(pages) == ["1", "5"]
        restored = Memory()
        restored.restore_pages(decode_memory(pages))
        assert restored.load4(0x1000) == 0xDEADBEEF
        assert restored.load1(0x5000) == 7
        assert restored.load4(0x9000) == 0
        assert memory_digest(restored) == memory_digest(mem)

    def test_digest_ignores_materialised_zero_pages(self):
        a = Memory()
        a.store4(0x2000, 42)
        b = Memory()
        b.store4(0x2000, 42)
        b.load4(0x8000)
        b.store4(0x9000, 5)
        b.store4(0x9000, 0)
        assert memory_digest(a) == memory_digest(b)

    def test_restore_rejects_short_page(self):
        mem = Memory()
        with pytest.raises(ValueError, match="expected"):
            mem.restore_pages({1: b"\x01" * 16})

    def test_pages_view_is_read_only_and_zero_copy(self):
        mem = Memory()
        mem.store4(0x3000, 99)
        (base, view), = list(mem.pages())
        assert base == 0x3000
        assert view.readonly
        mem.store4(0x3004, 7)  # view aliases the live page
        assert bytes(view[4:8]) == (7).to_bytes(4, "little")

    def test_incremental_encoder_matches_one_shot(self):
        mem = Memory()
        mem.store4(0x1000, 1)
        mem.store4(0x2000, 2)
        enc = IncrementalPageEncoder()
        assert enc.encode(mem) == encode_memory(mem)
        # Touch one page, zero another, add a third.
        mem.store4(0x1000, 3)
        mem.store4(0x2000, 0)
        mem.store4(0x7000, 4)
        assert enc.encode(mem) == encode_memory(mem)
        # No stores since the last call: cache replay, still equal.
        assert enc.encode(mem) == encode_memory(mem)


# -- stats ---------------------------------------------------------------


class TestStats:
    def test_merge_adds_counters_and_takes_last_exit(self):
        a = SimStats(executed_instructions=10, simops=3, exit_code=0)
        b = SimStats(executed_instructions=5, simops=2, exit_code=7)
        a.merge(b)
        assert a.executed_instructions == 15
        assert a.simops == 5
        assert a.exit_code == 7

    def test_round_trip_dict(self):
        stats = SimStats(executed_instructions=9, memory_ops=4, exit_code=1)
        assert SimStats.from_dict(stats.to_dict()) == stats

    def test_copy_is_independent(self):
        stats = SimStats(executed_instructions=1)
        clone = stats.copy()
        clone.executed_instructions = 99
        assert stats.executed_instructions == 1

    def test_architectural_dict_fields(self):
        stats = SimStats()
        arch = stats.architectural_dict()
        assert set(arch) == set(SimStats.ARCHITECTURAL_FIELDS)
        assert "elapsed_seconds" not in arch
        assert "decoded_instructions" not in arch


# -- payload validation ---------------------------------------------------


class TestRestoreValidation:
    def _payload(self, kc):
        built = kc("int main() { return 3; }")
        result = pipeline.run(built, max_instructions=5)
        return snapshot_run(
            result.program.state, result.program.syscalls,
            stats=result.stats,
        )

    def test_wrong_architecture_rejected(self, kc):
        payload = self._payload(kc)
        payload["arch"] = "not-kahrisma"
        with pytest.raises(CheckpointError, match="architecture"):
            restore_run(payload, KAHRISMA)

    def test_missing_section_rejected(self, kc):
        payload = self._payload(kc)
        del payload["syscalls"]
        with pytest.raises(CheckpointError, match="missing"):
            restore_run(payload, KAHRISMA)

    def test_model_state_needs_matching_model(self, kc):
        built = kc("int main() { return 3; }")
        model = DoeModel(issue_width=4)
        result = pipeline.run(built, cycle_model=model, max_instructions=5)
        payload = snapshot_run(
            result.program.state, result.program.syscalls,
            stats=result.stats, cycle_model=model,
        )
        narrow = DoeModel(issue_width=1)
        with pytest.raises(CheckpointError, match="issue width"):
            restore_run(payload, KAHRISMA, cycle_model=narrow)

    def test_branch_presence_mismatch_rejected(self, kc):
        built = kc("int main() { return 3; }")
        model = DoeModel(issue_width=built.issue_width)
        result = pipeline.run(built, cycle_model=model, max_instructions=5)
        payload = snapshot_run(
            result.program.state, result.program.syscalls,
            stats=result.stats, cycle_model=model,
        )
        with_branch = DoeModel(
            issue_width=built.issue_width,
            branch_model=BranchModel(GsharePredictor()),
        )
        with pytest.raises(CheckpointError, match="branch"):
            restore_run(payload, KAHRISMA, cycle_model=with_branch)

    def test_shard_mode_allows_model_without_state(self, kc):
        payload = self._payload(kc)
        assert payload["model"] is None
        model = DoeModel(issue_width=8)
        restored = restore_run(payload, KAHRISMA, cycle_model=model)
        assert restored.state.ip == payload["state"]["ip"]


# -- resume determinism ---------------------------------------------------


@pytest.mark.parametrize("name", sorted(program_names()))
def test_resume_matches_straight_run_per_benchmark(name, kc, tmp_path):
    """Save → restore → run-to-end equals the uninterrupted run, for
    every bundled benchmark (functional superblock engine)."""
    built = build_benchmark_cached(kc, name)
    straight = pipeline.run(built, engine="superblock")
    total = straight.stats.executed_instructions

    part = pipeline.run(
        built, engine="superblock",
        checkpoint_every=max(total // 2, 1), checkpoint_dir=str(tmp_path),
    )
    assert part.checkpoints, f"{name}: no checkpoint written"
    assert architectural_end_state(part) == architectural_end_state(straight)

    resumed = pipeline.run(
        built, engine="superblock", resume_from=part.checkpoints[0]
    )
    assert (architectural_end_state(resumed)
            == architectural_end_state(straight))


@pytest.mark.parametrize("engine,budget", [
    ("nocache", 4_000),
    ("cache", 20_000),
    ("predict", None),
    ("superblock", None),
])
def test_resume_matches_straight_run_per_engine(engine, budget, kc, tmp_path):
    """Same contract across every execution engine (dct4x4; the slow
    engines run a fixed instruction budget instead of to halt)."""
    built = build_benchmark_cached(kc, "dct4x4")
    straight = pipeline.run(built, engine=engine,
                            max_instructions=budget or 100_000_000)
    total = straight.stats.executed_instructions
    every = max(total // 2, 1)

    part = pipeline.run(
        built, engine=engine, max_instructions=budget or 100_000_000,
        checkpoint_every=every, checkpoint_dir=str(tmp_path),
    )
    assert part.checkpoints
    assert (part.stats.architectural_dict()
            == straight.stats.architectural_dict())

    resumed = pipeline.run(
        built, engine=engine, resume_from=part.checkpoints[0],
        max_instructions=total - every,
    )
    assert (architectural_end_state(resumed)
            == architectural_end_state(straight))


def test_resume_across_engines(kc, tmp_path):
    """A checkpoint is engine-agnostic: saved under superblock, resumed
    under the predict loop, same end state."""
    built = build_benchmark_cached(kc, "dct4x4")
    straight = pipeline.run(built, engine="superblock")
    part = pipeline.run(
        built, engine="superblock",
        checkpoint_every=50_000, checkpoint_dir=str(tmp_path),
    )
    resumed = pipeline.run(
        built, engine="predict", resume_from=part.checkpoints[-1]
    )
    assert (architectural_end_state(resumed)
            == architectural_end_state(straight))


def test_resume_restores_cycle_model_and_telemetry_counters(kc, tmp_path):
    """With model state restored, the resumed run's cycle and telemetry
    counters match the straight run exactly — not just approximately."""
    from repro.telemetry import collect_model_metrics

    built = build_benchmark_cached(kc, "dct4x4")

    def make_model():
        return DoeModel(issue_width=built.issue_width,
                        branch_model=BranchModel(GsharePredictor()))

    straight_model = make_model()
    straight = pipeline.run(built, engine="cache",
                            cycle_model=straight_model)
    part_model = make_model()
    part = pipeline.run(
        built, engine="cache", cycle_model=part_model,
        checkpoint_every=60_000, checkpoint_dir=str(tmp_path),
    )
    resume_model = make_model()
    resumed = pipeline.run(
        built, engine="cache", cycle_model=resume_model,
        resume_from=part.checkpoints[0],
    )
    assert resume_model.cycles == straight_model.cycles
    assert (collect_model_metrics(resume_model)
            == collect_model_metrics(straight_model))
    assert resume_model.save_state() == straight_model.save_state()
    assert (architectural_end_state(resumed)
            == architectural_end_state(straight))


def test_rand_state_survives_resume(kc, tmp_path):
    """The deterministic libc layer (LCG rand) continues bit-exactly."""
    source = """
    int main() {
        int i;
        int acc = 0;
        srand(7);
        for (i = 0; i < 2000; i = i + 1) {
            acc = acc + rand() % 97;
        }
        print_int(acc);
        return 0;
    }
    """
    built = kc(source, filename="randloop.kc")
    straight = pipeline.run(built, engine="superblock")
    part = pipeline.run(
        built, engine="superblock",
        checkpoint_every=10_000, checkpoint_dir=str(tmp_path),
    )
    assert part.checkpoints
    resumed = pipeline.run(
        built, engine="superblock", resume_from=part.checkpoints[0]
    )
    assert resumed.output == straight.output
    assert (architectural_end_state(resumed)
            == architectural_end_state(straight))


def test_identical_states_produce_identical_checkpoint_files(kc, tmp_path):
    """Two independent runs checkpointed at the same instruction count
    write bitwise-identical files (the format has no wall-clock or
    ordering noise)."""
    built = build_benchmark_cached(kc, "dct4x4")
    paths = []
    for tag in ("a", "b"):
        directory = tmp_path / tag
        part = pipeline.run(
            built, engine="superblock",
            checkpoint_every=50_000, checkpoint_dir=str(directory),
        )
        paths.append(part.checkpoints[0])
    with open(paths[0], "rb") as f:
        first = f.read()
    with open(paths[1], "rb") as f:
        second = f.read()
    assert first == second


def test_checkpoint_files_are_digest_protected(kc, tmp_path):
    built = build_benchmark_cached(kc, "dct4x4")
    part = pipeline.run(
        built, engine="superblock",
        checkpoint_every=50_000, checkpoint_dir=str(tmp_path),
    )
    path = part.checkpoints[0]
    with open(path, "rb") as f:
        data = f.read()
    with open(path, "wb") as f:
        f.write(data[:-100] + b"x" * 100)
    with pytest.raises(CheckpointError):
        pipeline.run(built, engine="superblock", resume_from=path)


def test_no_checkpoint_after_halt(kc, tmp_path):
    """A checkpoint interval past the end of the program writes nothing
    (the final state is the run result, not a resume point)."""
    built = build_benchmark_cached(kc, "dct4x4")
    part = pipeline.run(
        built, engine="superblock",
        checkpoint_every=10_000_000, checkpoint_dir=str(tmp_path),
    )
    assert part.checkpoints == []
    assert part.exit_code == 0
    assert os.listdir(tmp_path) == []
