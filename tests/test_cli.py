"""Command-line interface smoke tests (every subcommand)."""

import pytest

from repro.cli import main


@pytest.fixture()
def app_kc(tmp_path):
    path = tmp_path / "app.kc"
    path.write_text(
        "int main() { print_int(6 * 7); putchar('\\n'); return 0; }\n"
    )
    return str(path)


class TestCompileAndRun:
    def test_compile_run(self, app_kc, tmp_path, capsys):
        elf = str(tmp_path / "app.elf")
        assert main(["compile", app_kc, "-o", elf]) == 0
        assert main(["run", elf]) == 0
        out = capsys.readouterr().out
        assert "42" in out
        assert "instructions:" in out

    def test_compile_vliw_with_asm(self, app_kc, tmp_path, capsys):
        elf = str(tmp_path / "app.elf")
        asm = str(tmp_path / "app.s")
        main(["compile", app_kc, "-o", elf, "--isa", "vliw4",
              "--emit-asm", asm])
        text = open(asm).read()
        assert ".isa vliw4" in text and "{" in text

    def test_run_with_model(self, app_kc, tmp_path, capsys):
        elf = str(tmp_path / "app.elf")
        main(["compile", app_kc, "-o", elf])
        main(["run", elf, "--model", "doe"])
        assert "doe cycles:" in capsys.readouterr().out

    def test_run_with_trace(self, app_kc, tmp_path):
        elf = str(tmp_path / "app.elf")
        trace = str(tmp_path / "out.trc")
        main(["compile", app_kc, "-o", elf])
        main(["run", elf, "--trace", trace])
        lines = open(trace).read().splitlines()
        assert lines and "addi" in "".join(lines)

    def test_bundled_program_by_name(self, tmp_path, capsys):
        elf = str(tmp_path / "q.elf")
        assert main(["compile", "qsort", "-o", elf]) == 0

    def test_mixed_flag(self, tmp_path, capsys):
        src = tmp_path / "m.kc"
        src.write_text(
            "int k(int x) { return x + 1; }\n"
            "int main() { print_int(k(1)); return 0; }\n"
        )
        elf = str(tmp_path / "m.elf")
        main(["compile", str(src), "-o", elf, "--mixed", "k=vliw4"])
        main(["run", elf])
        assert "2" in capsys.readouterr().out


class TestAsmDisasm:
    def test_asm_subcommand(self, tmp_path, capsys):
        asm = tmp_path / "a.s"
        asm.write_text(
            ".global $risc$main\n$risc$main:\nli a0, 7\n"
            "call $risc$print_int\nhalt\n"
        )
        elf = str(tmp_path / "a.elf")
        assert main(["asm", str(asm), "-o", elf]) == 0
        main(["run", elf])
        assert "7" in capsys.readouterr().out

    def test_disasm(self, app_kc, tmp_path, capsys):
        elf = str(tmp_path / "app.elf")
        main(["compile", app_kc, "-o", elf])
        capsys.readouterr()
        assert main(["disasm", elf]) == 0
        out = capsys.readouterr().out
        assert "addi" in out and "0x00001000" in out


class TestAnalysis:
    def test_ilp_report(self, app_kc, capsys):
        assert main(["ilp", app_kc]) == 0
        out = capsys.readouterr().out
        assert "ILP" in out and "$risc$main" in out

    def test_select_report(self, capsys):
        assert main(["select", "dct4x4"]) == 0
        out = capsys.readouterr().out
        assert "isa_map:" in out and "dct4x4" in out

    def test_programs_listing(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out
        for name in ("cjpeg", "fft", "aes"):
            assert name in out


class TestTargetgen:
    def test_emit_artifacts(self, tmp_path, capsys):
        sim = str(tmp_path / "gen_sim.py")
        stubs = str(tmp_path / "libc.s")
        assert main(["targetgen", "--emit-sim", sim,
                     "--emit-stubs", stubs]) == 0
        assert "OPERATION_TABLES" in open(sim).read()
        assert "$vliw8$exit" in open(stubs).read()

    def test_nothing_to_do(self, capsys):
        assert main(["targetgen"]) == 0
        assert "nothing to do" in capsys.readouterr().out


class TestTraceDiff:
    def test_identical_traces_agree(self, app_kc, tmp_path, capsys):
        elf = str(tmp_path / "app.elf")
        main(["compile", app_kc, "-o", elf])
        t1 = str(tmp_path / "a.trc")
        t2 = str(tmp_path / "b.trc")
        main(["run", elf, "--trace", t1])
        main(["run", elf, "--trace", t2])
        capsys.readouterr()
        assert main(["trace-diff", t1, t2]) == 0
        assert "traces agree" in capsys.readouterr().out

    def test_mismatch_reported(self, app_kc, tmp_path, capsys):
        elf = str(tmp_path / "app.elf")
        main(["compile", app_kc, "-o", elf])
        t1 = str(tmp_path / "a.trc")
        main(["run", elf, "--trace", t1])
        t2 = str(tmp_path / "b.trc")
        lines = open(t1).read().splitlines()
        open(t2, "w").write("\n".join(lines[:-1]))
        capsys.readouterr()
        assert main(["trace-diff", t1, t2]) == 1


class TestBranchPredictorFlag:
    def test_run_with_predictor(self, tmp_path, capsys):
        src = tmp_path / "b.kc"
        src.write_text(
            "int main() { int s = 0; for (int i = 0; i < 40; i++) "
            "if (i % 3) s += i; print_int(s); return 0; }\n"
        )
        elf = str(tmp_path / "b.elf")
        main(["compile", str(src), "-o", elf])
        main(["run", elf, "--model", "doe",
              "--branch-predictor", "bimodal", "--branch-penalty", "5"])
        out = capsys.readouterr().out
        assert "branches:" in out and "penalty=5" in out


class TestEmitDoc:
    def test_isa_reference(self, tmp_path, capsys):
        doc = str(tmp_path / "isa.md")
        assert main(["targetgen", "--emit-doc", doc]) == 0
        text = open(doc).read()
        assert "ISA reference" in text and "switchtarget" in text
