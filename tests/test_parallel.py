"""Parallel shard runner (``repro.framework.parallel``).

The key property: sharding is invisible to the architectural result.
The merged statistics, program output and exit code of an N-shard run
must be bitwise-equal to an uninterrupted run; only cycle counts are
approximate (cold shard models), and that approximation is bounded
here.  Wall-clock speedup is *not* asserted — it depends on host CPU
count (the CI smoke job exercises it on multi-core runners).
"""

from __future__ import annotations

import os

import pytest

from repro.cycles.doe import DoeModel
from repro.framework import pipeline
from repro.framework.parallel import (
    merge_metric_dicts,
    plan_shards,
    run_parallel,
)
from repro.programs import load_program
from repro.snapshot import read_checkpoint


def dct(kc):
    return kc(load_program("dct4x4"), filename="dct4x4.kc")


class TestPlanShards:
    def test_boundaries_cover_the_run(self, kc, tmp_path):
        plan = plan_shards(dct(kc), shards=4, directory=str(tmp_path))
        assert plan.boundaries[0] == 0
        assert plan.boundaries == sorted(set(plan.boundaries))
        assert len(plan.boundaries) == 4
        assert plan.total_instructions > plan.boundaries[-1]
        assert all(os.path.exists(p) for p in plan.checkpoints)

    def test_checkpoints_carry_cumulative_stats(self, kc, tmp_path):
        plan = plan_shards(dct(kc), shards=3, directory=str(tmp_path))
        for boundary, path in zip(plan.boundaries, plan.checkpoints):
            payload = read_checkpoint(path)
            assert payload["stats"]["executed_instructions"] == boundary
            assert payload["meta"]["instructions"] == boundary

    def test_more_shards_than_instructions_deduplicates(self, kc, tmp_path):
        built = kc("int main() { return 0; }")
        plan = plan_shards(built, shards=1000, directory=str(tmp_path))
        assert len(plan.boundaries) <= plan.total_instructions
        assert plan.boundaries == sorted(set(plan.boundaries))

    def test_non_halting_program_rejected(self, kc, tmp_path):
        built = kc("int main() { while (1) {} return 0; }")
        with pytest.raises(ValueError, match="did not halt"):
            plan_shards(built, shards=2, directory=str(tmp_path),
                        max_instructions=10_000)


class TestRunParallel:
    @pytest.fixture(scope="class")
    def straight(self, kc):
        built = dct(kc)
        model = DoeModel(issue_width=built.issue_width)
        result = pipeline.run(built, engine="superblock", cycle_model=model)
        return built, result, model

    @pytest.mark.parametrize("shards", [2, 3])
    def test_merged_architectural_state_matches(self, shards, straight):
        built, result, model = straight
        par = run_parallel(built, shards=shards, model="doe")
        assert (par.stats.architectural_dict()
                == result.stats.architectural_dict())
        assert par.output == result.output
        assert par.exit_code == result.exit_code
        assert len(par.shard_results) == shards
        # Cold-start cycle drift stays a small fraction of the run.
        assert par.cycles == pytest.approx(model.cycles, rel=0.05)

    def test_single_shard_runs_inline(self, straight):
        built, result, _model = straight
        par = run_parallel(built, shards=1, model=None)
        assert (par.stats.architectural_dict()
                == result.stats.architectural_dict())
        assert par.cycles is None

    def test_processes_cap_forces_inline_execution(self, straight):
        built, result, _model = straight
        par = run_parallel(built, shards=2, model=None, processes=1)
        assert (par.stats.architectural_dict()
                == result.stats.architectural_dict())

    def test_merged_telemetry_document(self, straight):
        built, result, _model = straight
        par = run_parallel(built, shards=2, model="doe",
                           workload="dct4x4")
        doc = par.telemetry
        assert doc["schema"] == "kahrisma-telemetry"
        assert doc["shards"] == 2
        assert doc["workload"] == "dct4x4"
        metrics = doc["metrics"]
        assert (metrics["sim.executed_instructions"]
                == result.stats.executed_instructions)
        assert metrics["cycles.doe.cycles"] == par.cycles
        assert metrics["sim.exit_code"] == 0

    def test_keeps_checkpoints_in_explicit_dir(self, straight, tmp_path):
        built, _result, _model = straight
        par = run_parallel(built, shards=2, model=None,
                           checkpoint_dir=str(tmp_path))
        assert all(os.path.exists(p) for p in par.plan.checkpoints)

    def test_unknown_model_rejected_before_fast_forward(self, straight):
        built, _result, _model = straight
        with pytest.raises(ValueError, match="unknown cycle model"):
            run_parallel(built, shards=2, model="warp-drive")

    def test_workers_hit_shared_plan_cache(self, straight, tmp_path):
        built, result, _model = straight
        cache_dir = str(tmp_path / "plans")
        cold = run_parallel(built, shards=2, model="doe",
                            plan_cache_dir=cache_dir)
        warm = run_parallel(built, shards=2, model="doe",
                            plan_cache_dir=cache_dir)
        warm_metrics = warm.telemetry["metrics"]
        # Warm workers reload every hot plan from the shared cache
        # instead of re-translating it.
        assert warm_metrics["sim.superblock.translations"] == 0
        assert warm_metrics["sim.superblock.plan_cache_hits"] > 0
        assert warm.output == cold.output == result.output
        assert (warm.stats.executed_instructions
                == result.stats.executed_instructions)


class TestMergeMetricDicts:
    def test_counters_sum_config_first_exit_last(self):
        merged = merge_metric_dicts([
            {"sim.executed_instructions": 10, "mem.main.delay": 9,
             "sim.exit_code": 0, "sim.engine": "superblock",
             "sim.elapsed_seconds": 1.0},
            {"sim.executed_instructions": 5, "mem.main.delay": 9,
             "sim.exit_code": 3, "sim.engine": "superblock",
             "sim.elapsed_seconds": 0.5},
        ])
        assert merged["sim.executed_instructions"] == 15
        assert merged["mem.main.delay"] == 9
        assert merged["sim.exit_code"] == 3
        assert merged["sim.engine"] == "superblock"
        assert merged["sim.elapsed_seconds"] == 1.5

    def test_engine_gauges_take_max_not_sum(self):
        merged = merge_metric_dicts([
            {"sim.decode.entries": 100, "sim.superblock.plans_live": 10,
             "sim.plancache.entries": 400, "sim.aot.entries_bound": 120},
            {"sim.decode.entries": 80, "sim.superblock.plans_live": 30,
             "sim.plancache.entries": 400, "sim.aot.entries_bound": 115},
        ])
        assert merged["sim.decode.entries"] == 100
        assert merged["sim.superblock.plans_live"] == 30
        assert merged["sim.plancache.entries"] == 400
        assert merged["sim.aot.entries_bound"] == 120

    def test_derived_ratios_recomputed(self):
        merged = merge_metric_dicts([
            {"mem.cache.l1.hits": 8, "mem.cache.l1.misses": 2,
             "mem.cache.l1.accesses": 10, "mem.cache.l1.miss_rate": 0.2,
             "cycles.doe.cycles": 100, "cycles.doe.ops": 50,
             "cycles.doe.ops_per_cycle": 0.5},
            {"mem.cache.l1.hits": 9, "mem.cache.l1.misses": 1,
             "mem.cache.l1.accesses": 10, "mem.cache.l1.miss_rate": 0.1,
             "cycles.doe.cycles": 100, "cycles.doe.ops": 150,
             "cycles.doe.ops_per_cycle": 1.5},
        ])
        assert merged["mem.cache.l1.miss_rate"] == pytest.approx(0.15)
        assert merged["cycles.doe.ops_per_cycle"] == pytest.approx(1.0)
