"""Cost-aware ISA selection (energy / resources / reconfiguration)."""

import pytest

from repro.framework.cost import (
    CostParameters,
    OpClassCounts,
    estimate_width,
    evaluate_widths,
    select_isas_cost_aware,
)
from repro.framework.pipeline import build, run
from repro.programs import load_program

SOURCE = """
int data[128];
int kernel(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 4) {
        int a = data[i] * 3;
        int b = data[i + 1] * 5;
        int c = data[i + 2] * 7;
        int d = data[i + 3] * 9;
        acc += (a ^ b) + (c ^ d);
    }
    return acc;
}
int main() {
    for (int i = 0; i < 128; i++) data[i] = i;
    int total = 0;
    for (int r = 0; r < 8; r++) total += kernel(128);
    print_int(total);
    return 0;
}
"""


class TestOpClassCounts:
    def test_dynamic_energy_weighted(self):
        params = CostParameters()
        counts = OpClassCounts(alu=10, mul=2, div=1, mem=3, ctrl=4)
        expected = 10 * 1.0 + 2 * 3.0 + 1 * 8.0 + 3 * 4.0 + 4 * 1.0
        assert counts.dynamic_energy(params) == expected
        assert counts.total == 20


class TestWidthEstimate:
    def test_cycles_follow_effective_parallelism(self):
        params = CostParameters()
        counts = OpClassCounts(alu=1000)
        narrow = estimate_width(counts, ilp=8.0, width=2, params=params)
        wide = estimate_width(counts, ilp=8.0, width=8, params=params)
        assert narrow.cycles == 500
        assert wide.cycles == 125
        assert wide.cycles < narrow.cycles

    def test_ilp_caps_benefit(self):
        params = CostParameters()
        counts = OpClassCounts(alu=1000)
        at_ilp = estimate_width(counts, ilp=2.0, width=2, params=params)
        beyond = estimate_width(counts, ilp=2.0, width=8, params=params)
        assert beyond.cycles == at_ilp.cycles  # no speedup past the ILP
        assert beyond.energy > at_ilp.energy   # but more NOPs + leakage

    def test_static_energy_scales_with_width_and_time(self):
        params = CostParameters(static_per_edpe=1.0)
        counts = OpClassCounts(alu=100)
        one = estimate_width(counts, ilp=1.0, width=1, params=params)
        assert one.static_energy == pytest.approx(100.0)

    def test_empty_function(self):
        est = estimate_width(OpClassCounts(), 0.0, 4, CostParameters())
        assert est.cycles == 0 and est.energy == 0

    def test_evaluate_widths_ordering(self):
        params = CostParameters()
        counts = OpClassCounts(alu=500, mem=100)
        estimates = evaluate_widths(counts, 6.0, (1, 2, 4, 8), params)
        cycles = [e.cycles for e in estimates]
        assert cycles == sorted(cycles, reverse=True)


class TestCostAwareSelection:
    def test_objectives_diverge(self):
        by_objective = {}
        for objective in ("cycles", "energy", "edp"):
            report = select_isas_cost_aware(
                SOURCE, objective=objective, filename="k.kc"
            )
            by_objective[objective] = report
        # Minimising energy prefers narrow formats (leakage dominates).
        energy_widths = [c.width for c in by_objective["energy"].choices]
        cycles_widths = [c.width for c in by_objective["cycles"].choices]
        assert max(energy_widths) <= max(cycles_widths)

    def test_edpe_budget_caps_width(self):
        report = select_isas_cost_aware(
            SOURCE, objective="cycles", edpe_budget=2, filename="k.kc"
        )
        assert all(c.width <= 2 for c in report.choices)

    def test_budget_must_allow_some_width(self):
        with pytest.raises(ValueError):
            select_isas_cost_aware(SOURCE, edpe_budget=0, filename="k.kc")

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            select_isas_cost_aware(SOURCE, objective="speed",
                                   filename="k.kc")

    def test_isa_map_is_runnable(self):
        report = select_isas_cost_aware(SOURCE, objective="edp",
                                        filename="k.kc")
        built = build(SOURCE, isa="risc", isa_map=report.isa_map,
                      filename="k.kc")
        baseline = build(SOURCE, isa="risc", filename="k.kc")
        assert run(built).output == run(baseline).output

    def test_report_formats(self):
        report = select_isas_cost_aware(SOURCE, filename="k.kc")
        text = report.format()
        assert "objective: edp" in text
        assert "kernel" in text

    def test_reconfiguration_discourages_hot_call_switching(self):
        # With an enormous reconfiguration cost, every function stays
        # on the entry function's format.
        expensive = CostParameters(reconfig_cycles=10_000_000,
                                   reconfig_energy=10_000_000.0)
        report = select_isas_cost_aware(
            SOURCE, objective="cycles", params=expensive, filename="k.kc"
        )
        widths = {c.function: c.width for c in report.choices}
        assert len(set(widths.values())) == 1

    def test_estimates_exposed_per_function(self):
        report = select_isas_cost_aware(SOURCE, filename="k.kc")
        assert "kernel" in report.estimates
        assert len(report.estimates["kernel"]) == 5
