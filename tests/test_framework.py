"""Framework API: pipeline, mixed-ISA builds, ISA selection."""

import pytest

from repro.cycles.doe import DoeModel
from repro.cycles.ilp import IlpModel
from repro.framework.pipeline import build, build_benchmark, run
from repro.framework.selection import (
    FunctionAttributor,
    demangle,
    profile_functions,
    select_isas,
)

SOURCE = """
int helper(int x) { return x * 3 + 1; }
int main() {
    int s = 0;
    for (int i = 0; i < 20; i++) s += helper(i);
    print_int(s);
    putchar('\\n');
    return 0;
}
"""


class TestPipeline:
    def test_build_and_run(self):
        built = build(SOURCE, isa="risc", filename="app.kc")
        result = run(built)
        assert result.output == "590\n"
        assert result.stats.executed_instructions > 0
        assert result.cycles is None  # no model attached

    def test_run_with_model(self):
        built = build(SOURCE, isa="vliw4", filename="app.kc")
        result = run(built, cycle_model=DoeModel(issue_width=4))
        assert result.output == "590\n"
        assert result.cycles > 0

    def test_entry_metadata(self):
        built = build(SOURCE, isa="vliw2", filename="app.kc")
        assert built.entry_symbol == "$vliw2$main"
        assert built.issue_width == 2

    def test_mixed_build(self):
        built = build(SOURCE, isa="risc", isa_map={"helper": "vliw4"},
                      filename="app.kc")
        result = run(built)
        assert result.output == "590\n"
        assert result.stats.isa_switches == 40  # 20 calls, 2 per thunk

    def test_benchmark_builder(self):
        built = build_benchmark("qsort")
        result = run(built)
        assert result.output.startswith("1 ")

    def test_decode_cache_toggles(self):
        built = build(SOURCE, filename="app.kc")
        fast = run(built)
        slow = run(built, use_decode_cache=False)
        assert fast.output == slow.output
        assert slow.stats.decoded_instructions == \
            slow.stats.executed_instructions

    def test_max_instructions(self):
        built = build(SOURCE, filename="app.kc")
        result = run(built, max_instructions=10)
        assert result.stats.executed_instructions == 10


class TestSelection:
    def test_demangle(self):
        assert demangle("$risc$main") == "main"
        assert demangle("$vliw4$fdct8x8") == "fdct8x8"
        assert demangle("plain") == "plain"

    def test_profile_attributes_cycles(self):
        built = build(SOURCE, isa="risc", filename="app.kc")
        attributor = profile_functions(built)
        profiles = {demangle(p.name): p for p in attributor.sorted_profiles()}
        assert profiles["helper"].calls == 20
        assert profiles["helper"].ops > 0
        assert profiles["main"].cycles > 0
        # Attributed cycles cover the whole run.
        total = sum(p.cycles for p in attributor.profiles.values())
        assert total == attributor.cycles

    def test_select_returns_usable_map(self):
        report = select_isas(SOURCE, filename="app.kc")
        assert set(report.isa_map) <= {"main", "helper"}
        built = build(SOURCE, isa="risc", isa_map=report.isa_map,
                      filename="app.kc")
        assert run(built).output == "590\n"

    def test_small_functions_stay_on_default(self):
        # helper does ~5 ops per call: far below the reconfiguration
        # cost, so it must not get its own wide ISA.
        report = select_isas(SOURCE, filename="app.kc",
                             reconfig_cost_ops=64.0)
        choice = next(c for c in report.choices if c.function == "helper")
        assert choice.isa == "risc"
        assert "reconfiguration" in choice.reason

    def test_high_ilp_function_gets_wide_isa(self):
        source = """
        int a[64]; int b[64]; int c[64];
        void kernel() {
            for (int i = 0; i < 64; i = i + 4) {
                c[i] = a[i] * b[i];
                c[i+1] = a[i+1] * b[i+1];
                c[i+2] = a[i+2] * b[i+2];
                c[i+3] = a[i+3] * b[i+3];
            }
        }
        int main() {
            for (int i = 0; i < 64; i++) { a[i] = i; b[i] = 64 - i; }
            for (int r = 0; r < 4; r++) kernel();
            print_int(c[10]);
            return 0;
        }
        """
        report = select_isas(source, filename="k.kc")
        choice = next(c for c in report.choices if c.function == "kernel")
        assert choice.width >= 2

    def test_report_formats(self):
        report = select_isas(SOURCE, filename="app.kc")
        text = report.format()
        assert "function" in text and "ILP" in text

    def test_widths_restriction(self):
        report = select_isas(SOURCE, filename="app.kc", widths=(1, 4))
        assert all(c.width in (1, 4) for c in report.choices)


class TestAttributorEdgeCases:
    def test_unknown_address_bucketed(self):
        attributor = FunctionAttributor(IlpModel(), [])

        class FakeDec:
            addr = 0x9999
            n_exec = 1
            ops = ()

        attributor.observe(FakeDec(), [0] * 32)
        assert attributor.profiles["<unknown>"].instructions == 1
