"""ILP / AIE / DOE cycle models on hand-built instruction streams."""

import pytest

from repro.adl.kahrisma import ISA_VLIW2, ISA_VLIW4, KAHRISMA
from repro.cycles.aie import AieModel
from repro.cycles.doe import DoeModel
from repro.cycles.ilp import IDEAL_MEMORY_DELAY, IlpModel
from repro.cycles.memmodel import MainMemory
from repro.sim.decoder import decode_instruction
from repro.sim.memory import Memory
from repro.targetgen.optable import build_target

TARGET = build_target(KAHRISMA)
RISC = TARGET.optable(0)


def stream(words, isa_id=0):
    """Decode a list of encodings into instructions of one ISA."""
    mem = Memory()
    for i, word in enumerate(words):
        mem.store4(0x1000 + 4 * i, word)
    table = TARGET.optable(isa_id)
    decs = []
    addr = 0x1000
    end = 0x1000 + 4 * len(words)
    while addr < end:
        dec = decode_instruction(table, mem, addr)
        decs.append(dec)
        addr += dec.size
    return decs


def enc(name, **fields):
    return RISC.by_name[name].encode(fields)


def feed(model, decs, regs=None):
    regs = regs if regs is not None else [0] * 32
    for dec in decs:
        model.observe(dec, regs)
    return model


class TestIlpModel:
    def test_independent_ops_single_cycle(self):
        decs = stream([
            enc("addi", rd=1, rs1=0, imm=1),
            enc("addi", rd=2, rs1=0, imm=2),
            enc("addi", rd=3, rs1=0, imm=3),
            enc("addi", rd=4, rs1=0, imm=4),
        ])
        model = feed(IlpModel(), decs)
        assert model.cycles == 1
        assert model.ilp == 4.0

    def test_dependent_chain_serialises(self):
        decs = stream([
            enc("addi", rd=1, rs1=0, imm=1),
            enc("add", rd=2, rs1=1, rs2=0),
            enc("add", rd=3, rs1=2, rs2=0),
        ])
        model = feed(IlpModel(), decs)
        assert model.cycles == 3

    def test_mul_delay_counts(self):
        decs = stream([
            enc("mul", rd=1, rs1=2, rs2=3),
            enc("add", rd=4, rs1=1, rs2=0),
        ])
        model = feed(IlpModel(), decs)
        assert model.cycles == 3 + 1

    def test_branch_serialises_following_ops(self):
        decs = stream([
            enc("addi", rd=1, rs1=0, imm=1),
            enc("beq", rs1=0, rs2=0, imm=0),
            enc("addi", rd=2, rs1=0, imm=2),  # must start after branch
        ])
        model = feed(IlpModel(), decs)
        # branch completes at 1; the post-branch op spans [1, 2).
        assert model.cycles == 2

    def test_memory_ideal_three_cycles(self):
        decs = stream([enc("lw", rd=1, rs1=0, imm=0)])
        model = feed(IlpModel(), decs)
        assert model.cycles == IDEAL_MEMORY_DELAY

    def test_loads_depend_on_last_store(self):
        decs = stream([
            enc("sw", rt=1, rs1=0, imm=0),
            enc("lw", rd=2, rs1=0, imm=8),   # different address: still dep
        ])
        model = feed(IlpModel(), decs)
        # store starts at 0; load starts at store's *start* cycle.
        assert model.cycles == IDEAL_MEMORY_DELAY

    def test_stores_serialise_with_stores(self):
        decs = stream([
            enc("sw", rt=1, rs1=0, imm=0),
            enc("sw", rt=1, rs1=0, imm=4),
            enc("lw", rd=2, rs1=0, imm=8),
        ])
        model = feed(IlpModel(), decs)
        assert model.instructions == 3

    def test_nops_not_counted_as_ops(self):
        decs = stream([enc("nop"), enc("addi", rd=1, rs1=0, imm=1)])
        model = feed(IlpModel(), decs)
        assert model.ops == 1

    def test_reset(self):
        model = feed(IlpModel(), stream([enc("addi", rd=1, rs1=0, imm=1)]))
        model.reset()
        assert model.cycles == 0 and model.ops == 0


class TestAieModel:
    def test_sequential_issue(self):
        decs = stream([
            enc("addi", rd=1, rs1=0, imm=1),
            enc("addi", rd=2, rs1=0, imm=2),
        ])
        model = feed(AieModel(memory=MainMemory(0)), decs)
        assert model.cycles == 2

    def test_instruction_delay_is_max_of_ops(self):
        words = [
            enc("mul", rd=1, rs1=2, rs2=3),   # delay 3
            enc("addi", rd=4, rs1=0, imm=1),  # delay 1
        ]
        decs = stream(words, isa_id=ISA_VLIW2)
        model = feed(AieModel(memory=MainMemory(0)), decs)
        assert model.cycles == 3

    def test_next_instruction_waits_for_all_ops(self):
        words = [
            enc("mul", rd=1, rs1=2, rs2=3),
            enc("addi", rd=4, rs1=0, imm=1),
            # second bundle
            enc("addi", rd=5, rs1=0, imm=2),
            enc("nop"),
        ]
        decs = stream(words, isa_id=ISA_VLIW2)
        model = feed(AieModel(memory=MainMemory(0)), decs)
        assert model.cycles == 4  # 3 (mul bundle) + 1

    def test_memory_through_hierarchy(self):
        decs = stream([enc("lw", rd=1, rs1=0, imm=0)])
        model = feed(AieModel(memory=MainMemory(18)), decs)
        assert model.cycles == 18

    def test_nop_only_instruction_still_issues(self):
        decs = stream([enc("nop"), enc("nop")], isa_id=ISA_VLIW2)
        model = feed(AieModel(memory=MainMemory(0)), decs)
        assert model.cycles == 1


class TestDoeModel:
    def test_one_op_per_slot_per_cycle(self):
        # Four independent RISC ops: all in slot 0 -> 4 cycles + delay.
        decs = stream([
            enc("addi", rd=i, rs1=0, imm=i) for i in range(1, 5)
        ])
        model = feed(DoeModel(issue_width=1), decs)
        assert model.cycles == 5  # starts 1..4, completion 5

    def test_slots_drift_independently(self):
        # Bundle 1: slot0 mul (3 cy), slot1 addi.
        # Bundle 2: slot0 add dependent on mul, slot1 addi independent.
        words = [
            enc("mul", rd=1, rs1=2, rs2=3),
            enc("addi", rd=4, rs1=0, imm=1),
            enc("add", rd=5, rs1=1, rs2=0),
            enc("addi", rd=6, rs1=0, imm=2),
        ]
        decs = stream(words, isa_id=ISA_VLIW2)
        model = feed(DoeModel(issue_width=2, memory=MainMemory(0)), decs)
        # slot0: mul starts 1, completes 4; add starts 4, completes 5.
        # slot1: addi at 1, addi at 2 — drifted ahead of slot 0.
        assert model.cycles == 5

    def test_true_dependency_cross_slot(self):
        words = [
            enc("addi", rd=1, rs1=0, imm=7),   # slot 0
            enc("nop"),                        # slot 1
            enc("nop"),                        # slot 0 bundle 2
            enc("add", rd=2, rs1=1, rs2=0),    # slot 1 depends on slot 0
        ]
        decs = stream(words, isa_id=ISA_VLIW2)
        model = feed(DoeModel(issue_width=2, memory=MainMemory(0)), decs)
        # addi starts 1 completes 2; the dependent add can start at 2.
        assert model.cycles == 3

    def test_memory_program_order(self):
        regs = [0] * 32
        regs[10] = 0x100
        decs = stream([
            enc("lw", rd=1, rs1=10, imm=0),
            enc("lw", rd=2, rs1=10, imm=4),
        ])
        model = DoeModel(issue_width=1)
        for dec in decs:
            model.observe(dec, regs)
        # First lw misses (3+6+18+6+3 through the paper hierarchy);
        # the second hits the L1 line.
        assert model.memory is not None
        assert model.cycles > 30

    def test_nop_issue_toggle(self):
        words = [enc("nop"), enc("nop"), enc("addi", rd=1, rs1=0, imm=1),
                 enc("nop")]
        with_nops = feed(
            DoeModel(issue_width=2, memory=MainMemory(0)),
            stream(words, isa_id=ISA_VLIW2),
        )
        without = feed(
            DoeModel(issue_width=2, memory=MainMemory(0),
                     count_nop_issue=False),
            stream(words, isa_id=ISA_VLIW2),
        )
        assert with_nops.cycles >= without.cycles

    def test_summary_strings(self):
        model = feed(DoeModel(issue_width=1, memory=MainMemory(0)),
                     stream([enc("addi", rd=1, rs1=0, imm=1)]))
        assert "DOE" in model.summary()
        assert model.ops_per_cycle > 0
