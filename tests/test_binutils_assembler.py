"""Two-pass assembler: syntax, directives, bundles, relocations."""

import pytest

from repro.adl.kahrisma import KAHRISMA
from repro.binutils.assembler import Assembler, AsmError
from repro.binutils.elf import (
    R_KAH_ABS32,
    R_KAH_HI18,
    R_KAH_LO14,
    R_KAH_PC14,
    R_KAH_PC24,
)


@pytest.fixture(scope="module")
def assembler():
    return Assembler(KAHRISMA)


def asm(assembler, text, name="t.s"):
    return assembler.assemble(text, name)


class TestInstructions:
    def test_basic_encoding(self, assembler, risc_table):
        obj = asm(assembler, ".text\nadd r3, r4, r5\n")
        word = int.from_bytes(obj.sections[".text"][:4], "little")
        entry = risc_table.detect(word)
        assert entry.op.name == "add"
        assert entry.decode(word) == (3, 4, 5)

    def test_register_aliases(self, assembler, risc_table):
        obj = asm(assembler, "addi sp, sp, -16\n")
        word = int.from_bytes(obj.sections[".text"][:4], "little")
        assert risc_table.by_name["addi"].decode(word) == (30, 30, -16)

    def test_memory_operand_syntax(self, assembler, risc_table):
        obj = asm(assembler, "lw r5, -8(sp)\nsw r5, 12(r4)\n")
        text = obj.sections[".text"]
        lw = int.from_bytes(text[:4], "little")
        sw = int.from_bytes(text[4:8], "little")
        assert risc_table.by_name["lw"].decode(lw) == (5, 30, -8)
        assert risc_table.by_name["sw"].decode(sw) == (5, 4, 12)

    def test_char_immediate(self, assembler, risc_table):
        obj = asm(assembler, "addi r4, r0, 'A'\n")
        word = int.from_bytes(obj.sections[".text"][:4], "little")
        assert risc_table.by_name["addi"].decode(word)[2] == 65

    def test_case_insensitive_mnemonics(self, assembler):
        asm(assembler, "ADD r1, r2, r3\n")

    def test_comments_stripped(self, assembler):
        obj = asm(assembler, "# full line\nadd r1, r2, r3  # trailing\n")
        assert len(obj.sections[".text"]) == 4


class TestPseudoInstructions:
    def decode_words(self, obj, risc_table):
        text = obj.sections[".text"]
        out = []
        for i in range(0, len(text), 4):
            word = int.from_bytes(text[i:i + 4], "little")
            entry = risc_table.detect(word)
            out.append((entry.op.name, entry.decode(word)))
        return out

    def test_li_small(self, assembler, risc_table):
        obj = asm(assembler, "li r5, 100\n")
        assert self.decode_words(obj, risc_table) == [("addi", (5, 0, 100))]

    def test_li_negative_small(self, assembler, risc_table):
        obj = asm(assembler, "li r5, -3\n")
        assert self.decode_words(obj, risc_table) == [("addi", (5, 0, -3))]

    def test_li_large_expands_to_lui_ori(self, assembler, risc_table):
        obj = asm(assembler, "li r5, 0xDEADBEEF\n")
        words = self.decode_words(obj, risc_table)
        assert [w[0] for w in words] == ["lui", "ori"]
        high = words[0][1][1]
        low = words[1][1][2]
        assert (high << 14) | low == 0xDEADBEEF

    def test_li_aligned_large_single_lui(self, assembler, risc_table):
        obj = asm(assembler, "li r5, 0x40000\n")  # low 14 bits zero
        words = self.decode_words(obj, risc_table)
        assert [w[0] for w in words] == ["lui"]

    def test_mv_ret_neg_call_b(self, assembler, risc_table):
        obj = asm(assembler, "x:\nmv r1, r2\nneg r3, r4\nret\ncall x\nb x\n")
        names = [w[0] for w in self.decode_words(obj, risc_table)]
        assert names == ["addi", "sub", "jr", "jal", "j"]

    def test_la_generates_hi_lo_relocs(self, assembler):
        obj = asm(assembler, "la r5, table\n.data\ntable: .word 1\n")
        kinds = sorted(r.reloc_type for r in obj.relocations)
        assert kinds == [R_KAH_HI18, R_KAH_LO14]

    def test_pseudo_rejected_in_bundle(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, ".isa vliw2\n{ li r5, 99999 ; nop }\n")


class TestBundles:
    def test_bundle_padded_with_nops(self, assembler):
        obj = asm(assembler, ".isa vliw4\n{ add r1, r2, r3 }\n")
        text = obj.sections[".text"]
        assert len(text) == 16
        assert text[4:16] == b"\x00" * 12  # three NOP words

    def test_bundle_size_matches_width(self, assembler):
        obj = asm(
            assembler,
            ".isa vliw2\n{ add r1, r2, r3 ; sub r4, r5, r6 }\n",
        )
        assert len(obj.sections[".text"]) == 8

    def test_overfull_bundle_rejected(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, ".isa vliw2\n{ nop ; nop ; nop }\n")

    def test_two_control_ops_rejected(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, ".isa vliw2\nx:\n{ j x ; j x }\n")

    def test_bare_op_in_vliw_mode_becomes_bundle(self, assembler):
        obj = asm(assembler, ".isa vliw4\nadd r1, r2, r3\n")
        assert len(obj.sections[".text"]) == 16

    def test_unclosed_bundle_rejected(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, ".isa vliw2\n{ add r1, r2, r3\n")


class TestDirectives:
    def test_data_directives(self, assembler):
        obj = asm(
            assembler,
            ".data\n"
            "w: .word 1, 2, -1\n"
            "h: .half 0x1234\n"
            "b: .byte 1, 2, 3\n"
            "s: .asciiz \"hi\\n\"\n"
            "sp: .space 5\n",
        )
        data = obj.sections[".data"]
        assert data[:12] == (1).to_bytes(4, "little") + \
            (2).to_bytes(4, "little") + (0xFFFFFFFF).to_bytes(4, "little")
        assert data[12:14] == b"\x34\x12"
        assert data[14:17] == b"\x01\x02\x03"
        assert data[17:21] == b"hi\n\x00"
        assert len(data) == 26

    def test_align(self, assembler):
        obj = asm(assembler, ".data\n.byte 1\n.align 4\n.word 7\n")
        data = obj.sections[".data"]
        assert len(data) == 8
        assert data[4:8] == (7).to_bytes(4, "little")

    def test_align_requires_power_of_two(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, ".data\n.align 3\n")

    def test_bss_space_and_symbols(self, assembler):
        obj = asm(assembler, ".bss\nbuf: .space 128\nend:\n")
        assert obj.bss_size == 128
        assert obj.symbols["buf"].offset == 0
        assert obj.symbols["end"].offset == 128

    def test_data_in_bss_rejected(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, ".bss\n.word 1\n")

    def test_word_with_symbol_emits_abs32(self, assembler):
        obj = asm(assembler, ".data\nptr: .word target+8\ntarget: .word 0\n")
        rel = obj.relocations[0]
        assert rel.reloc_type == R_KAH_ABS32
        assert rel.symbol == "target"
        assert rel.addend == 8

    def test_func_ranges(self, assembler):
        obj = asm(
            assembler,
            ".text\n.func f\nf:\nnop\nnop\n.endfunc\n",
        )
        assert obj.symbols["f"].is_function
        assert obj.symbols["f"].size == 8

    def test_unclosed_func_rejected(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, ".func f\nf:\nnop\n")

    def test_global_marks_symbol(self, assembler):
        obj = asm(assembler, ".global f\nf:\nnop\n")
        assert obj.symbols["f"].is_global

    def test_loc_and_file_build_src_map(self, assembler):
        obj = asm(
            assembler,
            '.file 1 "app.kc"\n.loc 1 10\nnop\n.loc 1 12\nnop\n',
        )
        assert obj.src_map.lookup(0).line == 10
        assert obj.src_map.lookup(4).line == 12

    def test_asm_map_records_instruction_lines(self, assembler):
        obj = asm(assembler, "nop\nnop\n", name="file.s")
        entry = obj.asm_map.lookup(4)
        assert entry.file == "file.s"
        assert entry.line == 2


class TestBranchRelocs:
    def test_branch_emits_pc14(self, assembler):
        obj = asm(assembler, "loop:\nbne r1, r0, loop\n")
        rel = obj.relocations[0]
        assert rel.reloc_type == R_KAH_PC14
        assert rel.symbol == "loop"
        assert rel.addend == -4  # end of the RISC instruction

    def test_jump_emits_pc24(self, assembler):
        obj = asm(assembler, "j out\nout:\n")
        assert obj.relocations[0].reloc_type == R_KAH_PC24

    def test_bundle_branch_anchor_is_bundle_end(self, assembler):
        obj = asm(assembler, ".isa vliw4\nx:\n{ j x }\n")
        rel = obj.relocations[0]
        # op word at 0, bundle ends at 16 -> addend -16.
        assert rel.addend == -16

    def test_symbol_on_non_branch_rejected(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, "addi r1, r0, some_symbol\n")


class TestErrors:
    def test_unknown_mnemonic(self, assembler):
        with pytest.raises(AsmError) as e:
            asm(assembler, "frobnicate r1\n")
        assert "t.s:1" in str(e.value)

    def test_bad_register(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, "add r1, r2, r99\n")

    def test_wrong_operand_count(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, "add r1, r2\n")

    def test_duplicate_label(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, "x:\nnop\nx:\n")

    def test_unknown_isa(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, ".isa vliw3\n")

    def test_unknown_directive(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, ".frob 1\n")

    def test_instruction_outside_text(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, ".data\nadd r1, r2, r3\n")

    def test_immediate_out_of_range(self, assembler):
        with pytest.raises(AsmError):
            asm(assembler, "addi r1, r0, 10000\n")
