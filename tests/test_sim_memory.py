"""Sparse memory: endianness, page crossing, bulk access."""

from hypothesis import given, settings, strategies as st

from repro.sim.memory import Memory, PAGE_SIZE


class TestScalarAccess:
    def test_little_endian_word(self):
        mem = Memory()
        mem.store4(0x100, 0x12345678)
        assert mem.load1(0x100) == 0x78
        assert mem.load1(0x103) == 0x12
        assert mem.load2(0x100) == 0x5678
        assert mem.load4(0x100) == 0x12345678

    def test_uninitialised_reads_zero(self):
        mem = Memory()
        assert mem.load4(0xDEAD0000) == 0
        assert mem.load1(12345) == 0

    def test_value_masked_to_width(self):
        mem = Memory()
        mem.store1(0, 0x1FF)
        assert mem.load1(0) == 0xFF
        mem.store2(4, 0x1FFFF)
        assert mem.load2(4) == 0xFFFF
        mem.store4(8, 0x1FFFFFFFF)
        assert mem.load4(8) == 0xFFFFFFFF

    def test_address_wraps_32_bits(self):
        mem = Memory()
        mem.store4(0x1_0000_0010, 42)
        assert mem.load4(0x10) == 42

    def test_page_crossing_word(self):
        mem = Memory()
        addr = PAGE_SIZE - 2
        mem.store4(addr, 0xAABBCCDD)
        assert mem.load4(addr) == 0xAABBCCDD
        assert mem.load2(addr) == 0xCCDD
        assert mem.load2(addr + 2) == 0xAABB

    def test_unaligned_word(self):
        mem = Memory()
        mem.store4(0x101, 0x11223344)
        assert mem.load4(0x101) == 0x11223344


class TestBulkAccess:
    def test_store_load_bytes(self):
        mem = Memory()
        data = bytes(range(100))
        mem.store_bytes(0x2000, data)
        assert mem.load_bytes(0x2000, 100) == data

    def test_bulk_across_pages(self):
        mem = Memory()
        data = bytes((i * 7) & 0xFF for i in range(3 * PAGE_SIZE))
        mem.store_bytes(PAGE_SIZE - 100, data)
        assert mem.load_bytes(PAGE_SIZE - 100, len(data)) == data

    def test_cstring(self):
        mem = Memory()
        mem.store_cstring(0x300, b"hello")
        assert mem.load_cstring(0x300) == b"hello"
        assert mem.load1(0x305) == 0

    def test_cstring_limit(self):
        mem = Memory()
        mem.store_bytes(0, b"a" * 50)
        assert mem.load_cstring(0, limit=10) == b"a" * 10

    def test_resident_pages_sparse(self):
        mem = Memory()
        mem.store4(0, 1)
        mem.store4(0x10000000, 2)
        assert mem.resident_pages == 2
        bases = [base for base, _data in mem.pages()]
        assert bases == [0, 0x10000000]


class TestProperties:
    @given(
        addr=st.integers(0, 0xFFFFFFFF),
        data=st.binary(min_size=1, max_size=256),
    )
    @settings(max_examples=100, deadline=None)
    def test_bytes_roundtrip(self, addr, data):
        mem = Memory()
        mem.store_bytes(addr, data)
        assert mem.load_bytes(addr, len(data)) == data

    @given(addr=st.integers(0, 0xFFFFFFF0), value=st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=100, deadline=None)
    def test_word_roundtrip(self, addr, value):
        mem = Memory()
        mem.store4(addr, value)
        assert mem.load4(addr) == value

    @given(
        addr=st.integers(0, 0xFFFF),
        words=st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_adjacent_words_do_not_interfere(self, addr, words):
        mem = Memory()
        addr &= ~3
        for i, w in enumerate(words):
            mem.store4(addr + 4 * i, w)
        for i, w in enumerate(words):
            assert mem.load4(addr + 4 * i) == w
