"""Streaming events and the flight recorder (``repro.telemetry``).

Schema validity is asserted through :func:`validate_event` /
:func:`validate_stream_text` — the same validators the CI streaming
smoke job uses — across every fast engine and every bundled benchmark,
including the parallel shard-merge path.  The flight recorder's ring
buffers must stay bounded everywhere, dump on trap, and the lockstep
forensics must localize an injected fault to its exact instruction.
"""

from __future__ import annotations

import json

import pytest

from repro.binutils.loader import load_executable
from repro.framework import pipeline
from repro.framework.parallel import run_parallel
from repro.programs import load_program, program_names
from repro.sim.errors import SimulationError
from repro.sim.interpreter import Interpreter
from repro.telemetry import (
    EventStream,
    FlightRecorder,
    PrometheusSnapshot,
    format_forensics,
    merge_shard_events,
    prometheus_lines,
    render_event_summary,
    run_lockstep,
    summarize_events,
    validate_event,
    validate_stream_text,
    write_prometheus,
)
from repro.telemetry.stream import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    looks_like_event_stream,
)

BENCHMARKS = sorted(program_names())
FAST_ENGINES = ("predict", "superblock", "aot")


def bench(kc, name):
    """Session-cached benchmark build (same key as test_programs)."""
    return kc(load_program(name), isa="risc", filename=f"{name}.kc")


class TestEventStream:
    def test_envelope_and_monotonic_seq(self):
        stream = EventStream(heartbeat_every=1000)
        stream.emit("run-start", workload="x", engine="predict",
                    model=None, heartbeat_every=1000)
        stream.emit("run-end", instructions=5, exit_code=0,
                    elapsed_seconds=0.1, mips=1.0, halted=True)
        assert len(stream.events) == 2
        for i, event in enumerate(stream.events):
            validate_event(event)
            assert event["seq"] == i
            assert event["v"] == EVENT_SCHEMA_VERSION
            assert event["t"] >= 0

    def test_shard_tagging(self):
        stream = EventStream(shard=3)
        event = stream.emit("smc-invalidate", addr=0x1000, length=4)
        assert event["shard"] == 3

    def test_emit_raw_resequences(self):
        stream = EventStream()
        event = {"v": EVENT_SCHEMA_VERSION, "seq": 99, "t": 0.5,
                 "type": "syscall", "ip": 1, "ident": 2, "name": "putchar"}
        out = stream.emit_raw(event, shard=1)
        assert out["seq"] == 0 and out["shard"] == 1
        assert out["t"] == 0.5  # shard-local clock preserved

    def test_subscribers_see_every_event(self):
        seen = []
        stream = EventStream()
        stream.subscribe(seen.append)
        stream.emit("trap", error="boom", ip=0)
        assert [e["type"] for e in seen] == ["trap"]

    def test_file_sink_ndjson_and_idempotent_close(self, tmp_path):
        path = tmp_path / "events.ndjson"
        stream = EventStream.open(str(path), heartbeat_every=10)
        stream.emit("checkpoint", path="x.kchk", instructions=10)
        stream.close()
        stream.close()
        events = validate_stream_text(path.read_text())
        assert [e["type"] for e in events] == ["checkpoint"]

    def test_validate_event_rejects_bad_events(self):
        good = {"v": EVENT_SCHEMA_VERSION, "seq": 0, "t": 0.0,
                "type": "trap", "error": "x", "ip": 0}
        validate_event(good)
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event(dict(good, type="warp"))
        with pytest.raises(ValueError, match="missing fields"):
            validate_event({k: v for k, v in good.items() if k != "ip"})
        with pytest.raises(ValueError, match="schema version"):
            validate_event(dict(good, v=999))
        with pytest.raises(ValueError, match="envelope"):
            validate_event({"type": "trap", "error": "x", "ip": 0})

    def test_validate_stream_text_rejects_non_monotonic_seq(self):
        line = json.dumps({"v": EVENT_SCHEMA_VERSION, "seq": 0, "t": 0.0,
                           "type": "trap", "error": "x", "ip": 0})
        with pytest.raises(ValueError, match="not monotonic"):
            validate_stream_text(line + "\n" + line)
        with pytest.raises(ValueError, match="not JSON"):
            validate_stream_text("{nope}")


class TestEngineMatrix:
    """Schema validity + flight bounds: engines x all six benchmarks."""

    CAP = 25_000
    HEARTBEAT = 5_000
    FLIGHT_CAPACITY = 128

    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_stream_valid_and_flight_bounded(self, kc, name, engine):
        built = bench(kc, name)
        events = EventStream(heartbeat_every=self.HEARTBEAT)
        flight = FlightRecorder(capacity=self.FLIGHT_CAPACITY,
                                events_capacity=32)
        result = pipeline.run(
            built, engine=engine, max_instructions=self.CAP,
            events=events, flight=flight, workload=name,
        )
        for event in events.events:
            validate_event(event)
        types = [e["type"] for e in events.events]
        assert types[0] == "run-start"
        assert types[-1] == "run-end"
        start = events.events[0]
        assert start["workload"] == name and start["engine"] == engine
        end = events.events[-1]
        assert end["instructions"] == result.stats.executed_instructions
        if end["instructions"] >= 2 * self.HEARTBEAT:
            assert types.count("heartbeat") >= 1
        for event in events.events:
            if event["type"] == "heartbeat":
                assert event["instructions"] % self.HEARTBEAT == 0
                assert isinstance(event["counters"], dict)
        # Ring buffers never exceed their bounds, whatever the engine.
        assert len(flight.blocks) <= self.FLIGHT_CAPACITY
        assert len(flight.marks) <= 32
        kinds = {entry[0] for entry in flight.blocks}
        assert kinds <= {"block", "abort", "dispatch", "instr"}
        if engine == "predict":
            assert kinds <= {"instr"}
        elif engine == "superblock":
            assert "block" in kinds
        elif engine == "aot":
            assert "dispatch" in kinds

    def test_heartbeat_cadence_exact(self, kc):
        built = bench(kc, "dct4x4")
        events = EventStream(heartbeat_every=5_000)
        result = pipeline.run(built, engine="superblock", events=events)
        summary = summarize_events(events.events)
        hb = summary["heartbeats"]
        assert hb["mean_interval_instructions"] == 5_000
        assert hb["count"] == (
            (result.stats.executed_instructions - 1) // 5_000
        )


class TestRareEvents:
    def test_syscall_events_named(self, kc):
        built = bench(kc, "dct4x4")
        events = EventStream()
        pipeline.run(built, engine="superblock", events=events)
        syscalls = [e for e in events.events if e["type"] == "syscall"]
        assert syscalls
        for event in syscalls:
            validate_event(event)
            assert isinstance(event["name"], str) and event["name"]
            assert event["ident"] >= 0

    def test_isa_switch_events_on_mixed_build(self, kc):
        source = (
            "int helper(int x) { return x * 3 + 1; }\n"
            "int main() { int s = 0;"
            " for (int i = 0; i < 8; i++) s += helper(i);"
            " print_int(s); return 0; }\n"
        )
        built = kc(source, isa="risc", isa_map={"helper": "vliw4"})
        events = EventStream()
        flight = FlightRecorder()
        pipeline.run(built, engine="superblock", events=events,
                     flight=flight)
        switches = [e for e in events.events if e["type"] == "isa-switch"]
        assert len(switches) >= 2  # call + return, per iteration
        for event in switches:
            validate_event(event)
            assert event["from_isa"] != event["to_isa"]
        assert any(m["kind"] == "isa-switch" for m in flight.marks)

    def test_checkpoint_events(self, kc, tmp_path):
        built = bench(kc, "dct4x4")
        events = EventStream()
        result = pipeline.run(
            built, engine="superblock", events=events,
            checkpoint_every=40_000, checkpoint_dir=str(tmp_path),
        )
        marks = [e for e in events.events if e["type"] == "checkpoint"]
        assert len(marks) == len(result.checkpoints)
        assert [m["path"] for m in marks] == result.checkpoints
        instr = [m["instructions"] for m in marks]
        assert instr == sorted(instr)


class TestTrapAndDump:
    def trap(self, kc, tmp_path, engine):
        built = bench(kc, "dct4x4")
        program = load_executable(built.elf, built.arch)
        events = EventStream()
        flight = FlightRecorder(capacity=64)
        flight.dump_path = str(tmp_path / "flight.json")
        interp = Interpreter(program.state, engine=engine,
                             events=events, flight=flight)
        interp.run(max_instructions=5_000)
        # Corrupt the next fetch: 0xffffffff decodes to nothing.
        program.state.mem.store4(program.state.ip, 0xFFFFFFFF)
        with pytest.raises(SimulationError) as excinfo:
            interp.run(max_instructions=5_000)
        return events, flight, excinfo.value

    @pytest.mark.parametrize("engine", ["predict", "superblock"])
    def test_trap_attaches_flight_and_dumps(self, kc, tmp_path, engine):
        events, flight, exc = self.trap(kc, tmp_path, engine)
        # The exception carries the forensic context ...
        assert exc.flight["blocks"]
        assert exc.flight["blocks"] == [list(b) for b in flight.blocks]
        assert any(m["kind"] == "trap" for m in flight.marks)
        # ... the dump file was written ...
        assert exc.flight_dump == flight.dump_path
        dumped = json.loads(open(flight.dump_path).read())
        assert dumped["blocks"] and dumped["capacity"] == 64
        # ... and the stream saw the trap.
        trap = [e for e in events.events if e["type"] == "trap"]
        assert len(trap) == 1
        validate_event(trap[0])
        assert trap[0]["error"]

    def test_format_names_trail(self, kc, tmp_path):
        _events, flight, _exc = self.trap(kc, tmp_path, "superblock")
        text = flight.format()
        assert "flight recorder" in text
        assert "trap" in text


class TestParallelMerge:
    def test_merged_stream_is_valid_and_shard_tagged(self, kc):
        built = bench(kc, "dct4x4")
        events = EventStream(heartbeat_every=10_000)
        run_parallel(built, shards=2, model="doe", workload="dct4x4",
                     events=events)
        for event in events.events:
            validate_event(event)
        seqs = [e["seq"] for e in events.events]
        assert seqs == sorted(set(seqs))
        types = [e["type"] for e in events.events]
        assert types[0] == "run-start"
        assert types[-1] == "run-end"
        assert events.events[0]["shards"] == 2
        shard_tags = {e["shard"] for e in events.events if "shard" in e}
        assert shard_tags == {0, 1}
        assert any(t == "heartbeat" for t in types)

    @pytest.mark.parametrize(
        "engine", ["nocache", "cache", "predict", "superblock"]
    )
    def test_merged_stream_schema_valid_per_engine(self, kc, engine):
        # The merged coordinator stream must be schema-valid and seq
        # gap-free no matter which engine ran the shards.
        built = bench(kc, "dct4x4")
        events = EventStream(heartbeat_every=20_000)
        run_parallel(built, shards=2, model="none", engine=engine,
                     workload="dct4x4", events=events)
        for event in events.events:
            validate_event(event)
        seqs = [e["seq"] for e in events.events]
        assert seqs == list(range(len(seqs)))
        types = [e["type"] for e in events.events]
        assert types[0] == "run-start" and types[-1] == "run-end"
        assert {e["shard"] for e in events.events if "shard" in e} == {0, 1}

    def test_merge_shard_events_counts(self):
        coordinator = EventStream()
        worker = EventStream(shard=0, heartbeat_every=10)
        worker.emit("syscall", ip=1, ident=2, name="putchar")
        other = EventStream(shard=1, heartbeat_every=10)
        other.emit("smc-invalidate", addr=16, length=4)
        merged = merge_shard_events(
            coordinator, [worker.events, other.events, None]
        )
        assert merged == 2
        assert [e["shard"] for e in coordinator.events] == [0, 1]
        assert [e["seq"] for e in coordinator.events] == [0, 1]


class TestForensics:
    def test_agreeing_engines_return_none(self, kc):
        built = bench(kc, "dct4x4")
        report = run_lockstep(
            built,
            {"engine": "superblock", "label": "superblock"},
            {"engine": "aot", "label": "aot"},
            interval=20_000,
        )
        assert report is None

    def test_injected_fault_localized(self, kc):
        built = bench(kc, "dct4x4")
        sp = built.arch.register_file.by_role("sp")[0].name
        inject = {"at": 30_000, "reg": sp, "xor": 8}
        report = run_lockstep(
            built,
            {"engine": "superblock", "label": "superblock"},
            {"engine": "aot", "label": "aot"},
            interval=10_000,
            inject=inject,
        )
        assert report is not None
        assert report["first_divergent_instruction"] == 30_000
        assert report["first_divergent_pc"] is not None
        delta = report["replay_register_delta"]
        assert any(entry["name"] == sp for entry in delta)
        assert report["recent_blocks_a"]["blocks"]
        assert report["recent_blocks_b"]["blocks"]
        assert report["injected_fault"] == inject
        text = format_forensics(report)
        assert "first divergent instruction" in text
        assert sp in text
        assert "last blocks on a" in text


class TestPrometheus:
    METRICS = {
        "sim.executed_instructions": 1234,
        "sim.engine": "superblock",
        "cycles.doe.ops_per_cycle": 1.5,
        "sim.halted": True,
    }

    def test_lines(self):
        lines = prometheus_lines(self.METRICS)
        text = "\n".join(lines)
        assert "kahrisma_sim_executed_instructions 1234" in text
        assert "kahrisma_cycles_doe_ops_per_cycle 1.5" in text
        assert "kahrisma_sim_halted 1" in text
        assert 'kahrisma_run_info{sim_engine="superblock"} 1' in text

    def test_write_atomic(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(self.METRICS, str(path))
        assert "kahrisma_sim_executed_instructions" in path.read_text()
        assert list(tmp_path.iterdir()) == [path]  # no tmp file left

    def test_snapshot_subscriber_refreshes_on_heartbeat(self, tmp_path):
        path = tmp_path / "metrics.prom"
        snapshot = PrometheusSnapshot(str(path))
        stream = EventStream()
        stream.subscribe(snapshot)
        stream.emit("syscall", ip=0, ident=1, name="putchar")
        assert snapshot.writes == 0
        stream.emit("heartbeat", instructions=10, mips=1.0, cycles=None,
                    counters={"sim.executed_instructions": 10})
        assert snapshot.writes == 1
        assert "kahrisma_sim_executed_instructions 10" in path.read_text()


class TestSummaries:
    def synthetic(self):
        stream = EventStream(heartbeat_every=10)
        stream.emit("run-start", workload="w", engine="superblock",
                    model="doe", heartbeat_every=10)
        for n in (10, 20, 30):
            stream.emit("heartbeat", instructions=n, mips=2.0,
                        cycles=None, counters={})
        stream.emit("syscall", ip=0, ident=1, name="putchar")
        stream.emit("syscall", ip=4, ident=1, name="putchar")
        stream.emit("run-end", instructions=35, exit_code=0,
                    elapsed_seconds=0.5, mips=2.5, halted=True)
        return stream.events

    def test_summarize(self):
        summary = summarize_events(self.synthetic())
        assert summary["events"] == 7
        assert summary["by_type"]["heartbeat"] == 3
        assert summary["workload"] == "w"
        assert summary["syscalls_by_name"] == {"putchar": 2}
        assert summary["heartbeats"]["mean_interval_instructions"] == 10
        assert summary["exit_code"] == 0

    def test_render(self):
        text = render_event_summary(summarize_events(self.synthetic()))
        assert "== events ==" in text
        assert "== heartbeats ==" in text
        assert "putchar" in text

    def test_looks_like_event_stream(self):
        events = self.synthetic()
        ndjson = "\n".join(json.dumps(e) for e in events)
        assert looks_like_event_stream(ndjson)
        assert not looks_like_event_stream('{"schema": "kahrisma-telemetry"}')
        assert not looks_like_event_stream("not json")

    def test_event_types_registry_is_complete(self):
        assert set(EVENT_TYPES) == {
            "run-start", "heartbeat", "syscall", "isa-switch",
            "smc-invalidate", "checkpoint", "trap", "run-end",
        }


class TestCli:
    @pytest.fixture()
    def elf(self, tmp_path):
        from repro.cli import main

        src = tmp_path / "app.kc"
        src.write_text(
            "int main() { int s = 0;"
            " for (int i = 0; i < 2000; i++) s += i;"
            " print_int(s); return 0; }\n"
        )
        path = str(tmp_path / "app.elf")
        assert main(["compile", str(src), "-o", path]) == 0
        return path

    def test_events_file_and_report(self, elf, tmp_path, capsys):
        from repro.cli import main

        events_path = str(tmp_path / "events.ndjson")
        assert main(["run", elf, "--events", events_path,
                     "--heartbeat", "1000"]) == 0
        events = validate_stream_text(open(events_path).read())
        types = [e["type"] for e in events]
        assert types[0] == "run-start" and types[-1] == "run-end"
        assert "heartbeat" in types
        capsys.readouterr()
        assert main(["report", events_path]) == 0
        out = capsys.readouterr().out
        assert "event stream schema" in out
        assert "== events ==" in out

    def test_events_stdout_is_pure_ndjson(self, elf, capsys):
        from repro.cli import main

        assert main(["run", elf, "--events", "-"]) == 0
        captured = capsys.readouterr()
        events = validate_stream_text(captured.out)
        assert [e["type"] for e in events][-1] == "run-end"
        assert "instructions:" in captured.err  # summary went to stderr

    def test_events_stdout_stays_pure_with_live(self, elf, capsys):
        # --live renders \r-rewritten progress; with --events - that
        # rendering must land on stderr, never inside the NDJSON.
        from repro.cli import main

        assert main(["run", elf, "--events", "-", "--live",
                     "--heartbeat", "1000"]) == 0
        captured = capsys.readouterr()
        assert "\r" not in captured.out
        events = validate_stream_text(captured.out)
        assert [e["type"] for e in events][-1] == "run-end"
        assert "\r" in captured.err  # the progress line went to stderr
