"""Shared fixtures: architecture, target tables, build/run helpers.

Compiled executables are cached per session — compilation is the
expensive step and most tests only need to *run* them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import pytest

from repro.adl.kahrisma import KAHRISMA
from repro.binutils.assembler import Assembler
from repro.binutils.linker import link
from repro.binutils.loader import LoadedProgram, load_executable
from repro.framework.pipeline import BuildResult, build
from repro.sim.interpreter import Interpreter
from repro.targetgen.optable import TargetDescription, build_target


@pytest.fixture(scope="session")
def arch():
    return KAHRISMA


@pytest.fixture(scope="session")
def target(arch) -> TargetDescription:
    return build_target(arch)


@pytest.fixture(scope="session")
def risc_table(target):
    return target.optable(0)


_BUILD_CACHE: Dict[Tuple, BuildResult] = {}


def cached_build(source: str, *, isa: str = "risc",
                 isa_map: Optional[Dict[str, str]] = None,
                 filename: str = "<test>") -> BuildResult:
    key = (source, isa, tuple(sorted((isa_map or {}).items())), filename)
    result = _BUILD_CACHE.get(key)
    if result is None:
        result = build(source, isa=isa, isa_map=isa_map, filename=filename)
        _BUILD_CACHE[key] = result
    return result


@pytest.fixture(scope="session")
def kc():
    """Build helper with session-wide caching."""
    return cached_build


def run_built(built: BuildResult, *, cycle_model=None, tracer=None,
              max_instructions: int = 50_000_000,
              use_decode_cache: bool = True, use_prediction: bool = True,
              engine: Optional[str] = None,
              input_data: bytes = b"") -> Tuple[LoadedProgram, object]:
    program = load_executable(built.elf, built.arch, input_data=input_data)
    interp = Interpreter(
        program.state, cycle_model=cycle_model, tracer=tracer,
        use_decode_cache=use_decode_cache, use_prediction=use_prediction,
        engine=engine,
    )
    stats = interp.run(max_instructions=max_instructions)
    return program, stats


@pytest.fixture(scope="session")
def simulate():
    return run_built


def assemble_and_run(arch, asm: str, *, entry: str = "$risc$main",
                     entry_isa: int = 0, max_instructions: int = 1_000_000,
                     cycle_model=None):
    """Assemble a snippet, link with libc stubs, run to halt."""
    obj = Assembler(arch).assemble(asm, "test.s")
    elf, _info = link([obj], arch, entry_symbol=entry, entry_isa=entry_isa)
    program = load_executable(elf, arch)
    interp = Interpreter(program.state, cycle_model=cycle_model)
    stats = interp.run(max_instructions=max_instructions)
    return program, stats


@pytest.fixture(scope="session")
def asm_run(arch):
    def _run(asm, **kwargs):
        return assemble_and_run(arch, asm, **kwargs)
    return _run
