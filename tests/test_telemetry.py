"""Telemetry layer: registry, profiler, timeline, reports, overhead.

The load-bearing guarantees:

* telemetry never changes architectural results (differential test on
  every bundled benchmark);
* the profiler's attribution *sums* to the interpreter's counters
  (per-function instructions == ``executed_instructions``, per-PC
  cycles == ``model.cycles``);
* the timeline is valid Chrome ``trace_event`` JSON;
* the tracer flushes and closes its file on abort paths.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.cycles.aie import AieModel
from repro.cycles.doe import DoeModel
from repro.framework.pipeline import build_benchmark, run
from repro.programs import load_program, program_names
from repro.sim.errors import SimulationError
from repro.sim.interpreter import ENGINES
from repro.sim.stats import SimStats
from repro.sim.tracing import Tracer
from repro.telemetry import (
    SCHEMA_VERSION,
    HotspotProfiler,
    MetricsRegistry,
    TimelineRecorder,
    build_run_report,
    collect_run_metrics,
    render_report,
    tree_from_flat,
    write_report,
)

from .conftest import run_built


SMALL = "fft"  # fast bundled benchmark with several functions


def mem_digest(mem) -> str:
    h = hashlib.sha256()
    for index, data in sorted(mem.pages()):
        if not any(data):
            continue
        h.update(index.to_bytes(8, "little"))
        h.update(bytes(data))
    return h.hexdigest()


def arch_snapshot(result) -> dict:
    state = result.program.state
    return {
        "exit": state.exit_code,
        "ip": state.ip,
        "regs": tuple(state.regs),
        "mem": mem_digest(state.mem),
        "output": result.output,
        "instructions": result.stats.executed_instructions,
        "slots": result.stats.executed_slots,
        "mem_ops": result.stats.memory_ops,
    }


class TestRegistry:
    def test_counter_gauge_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("sim.decode.lookups").inc()
        reg.counter("sim.decode.lookups").inc(4)
        reg.gauge("sim.engine").set("superblock")
        snap = reg.snapshot()
        assert snap["sim.decode.lookups"] == 5
        assert snap["sim.engine"] == "superblock"

    def test_timer_and_histogram_expand(self):
        reg = MetricsRegistry()
        with reg.timer("sim.run"):
            pass
        for v in (1, 2, 3, 10):
            reg.histogram("sim.superblock.block_len").record(v)
        snap = reg.snapshot()
        assert snap["sim.run.count"] == 1
        assert snap["sim.run.seconds"] >= 0.0
        assert snap["sim.superblock.block_len.count"] == 4
        assert snap["sim.superblock.block_len.sum"] == 16
        assert snap["sim.superblock.block_len.min"] == 1
        assert snap["sim.superblock.block_len.max"] == 10

    def test_bound_sources_are_lazy(self):
        reg = MetricsRegistry()
        cell = {"n": 1}
        reg.bind("sim.decode.entries", lambda: cell["n"])
        cell["n"] = 42
        assert reg.snapshot()["sim.decode.entries"] == 42

    def test_disabled_registry_is_null(self):
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("a.b")
        counter.inc(100)
        reg.gauge("a.c").set(7)
        reg.bind("a.d", lambda: 1 / 0)  # never evaluated
        with reg.timer("a.t"):
            pass
        reg.histogram("a.h").record(3)
        assert counter.value == 0
        assert reg.snapshot() == {}
        assert len(reg) == 0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(TypeError):
            reg.gauge("x.y")

    def test_tree_from_flat(self):
        tree = tree_from_flat({
            "sim.decode.lookups": 3,
            "sim.mips": 1.5,
            "mem.cache.l1.misses": 2,
        })
        assert tree["sim"]["decode"]["lookups"] == 3
        assert tree["sim"]["mips"] == 1.5
        assert tree["mem"]["cache"]["l1"]["misses"] == 2


class TestStatsSemantics:
    """Satellite: derived SimStats properties per engine."""

    def test_lookup_avoidance_per_engine(self, kc):
        built = kc(load_program(SMALL), filename=f"{SMALL}.kc")
        # The uncached engines decode every dynamic instruction; give
        # them a budget (semantics don't depend on a full run).
        budgets = {"nocache": 15_000, "cache": 100_000}
        values = {}
        for engine in ENGINES:
            _program, stats = run_built(
                built, engine=engine,
                max_instructions=budgets.get(engine, 50_000_000),
            )
            values[engine] = stats.lookup_avoidance
        assert values["nocache"] == 0.0
        assert values["cache"] == 0.0
        # predict: per-instruction prediction (paper's definition).
        assert values["predict"] > 0.9
        # superblock: block-build lookups only; must not report 0.
        assert values["superblock"] > 0.95
        assert values["superblock"] >= values["predict"]

    def test_predict_matches_paper_definition(self, kc):
        built = kc(load_program(SMALL), filename=f"{SMALL}.kc")
        _program, stats = run_built(built, engine="predict")
        assert stats.lookup_avoidance == pytest.approx(
            stats.prediction_hits / stats.executed_instructions
        )

    def test_empty_stats(self):
        assert SimStats().lookup_avoidance == 0.0
        assert SimStats().decode_avoidance == 0.0


def cached(kc):
    return kc(load_program(SMALL), filename=f"{SMALL}.kc")


class TestDifferentialTelemetry:
    """Telemetry on/off must be architecturally invisible."""

    @pytest.mark.parametrize("name", sorted(program_names()))
    def test_benchmark_identical_with_telemetry(self, name):
        built = build_benchmark(name)
        plain = run(built, engine="superblock")
        profiled = run(
            built, engine="superblock",
            profiler=HotspotProfiler(mode="block"),
            collect_metrics=True,
        )
        assert arch_snapshot(profiled) == arch_snapshot(plain)
        assert (
            profiled.profiler.total_instructions
            == plain.stats.executed_instructions
        )

    def test_exact_profiler_identical(self, kc):
        built = cached(kc)
        plain = run(built, engine="predict")
        profiled = run(built, engine="predict",
                       profiler=HotspotProfiler(mode="exact"))
        assert arch_snapshot(profiled) == arch_snapshot(plain)

    def test_timeline_run_identical(self, kc):
        built = cached(kc)
        plain = run(built, engine="superblock",
                    cycle_model=DoeModel(issue_width=1))
        timed = run(built, engine="superblock",
                    cycle_model=DoeModel(issue_width=1),
                    timeline=TimelineRecorder(max_events=1000))
        assert arch_snapshot(timed) == arch_snapshot(plain)
        assert timed.cycles == plain.cycles


class TestProfiler:
    def test_exact_attribution_sums(self, kc):
        built = cached(kc)
        profiler = HotspotProfiler(mode="exact")
        result = run(built, engine="predict", profiler=profiler)
        assert (
            sum(profiler.instruction_counts().values())
            == result.stats.executed_instructions
        )

    def test_block_attribution_sums(self, kc):
        built = cached(kc)
        profiler = HotspotProfiler(mode="block")
        result = run(built, engine="superblock", profiler=profiler)
        assert (
            profiler.total_instructions
            == result.stats.executed_instructions
        )

    def test_function_attribution_sums_to_executed(self, kc):
        """Satellite: per-function instruction sum == executed count."""
        built = cached(kc)
        profiler = HotspotProfiler(mode="block")
        result = run(built, engine="superblock", profiler=profiler,
                     collect_metrics=True)
        profile = result.telemetry["profile"]
        assert (
            sum(row["instructions"] for row in profile["functions"])
            == result.stats.executed_instructions
        )
        # Symbolization found real functions, not just the "?" bucket.
        names = {row["name"] for row in profile["functions"]}
        assert any(name.startswith("$risc$") for name in names)

    def test_cycle_attribution_sums_to_model(self, kc):
        built = cached(kc)
        profiler = HotspotProfiler(mode="block")
        model = DoeModel(issue_width=1)
        result = run(built, engine="superblock", cycle_model=model,
                     profiler=profiler)
        assert result.stats.executed_instructions > 0
        assert sum(profiler.pc_cycles.values()) == model.cycles
        # L1 misses attributed too (the hierarchy is exercised).
        from repro.cycles.memmodel import find_cache

        l1 = find_cache(model.memory, "L1")
        assert sum(profiler.pc_l1_misses.values()) == l1.misses

    def test_budget_tail_keeps_attribution(self, kc):
        """Superblock budget tails fall back to the profiled loop."""
        built = cached(kc)
        profiler = HotspotProfiler(mode="block")
        result = run(built, engine="superblock", profiler=profiler,
                     max_instructions=157)
        assert result.stats.executed_instructions == 157
        assert profiler.total_instructions == 157

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            HotspotProfiler(mode="statistical")

    def test_report_fractions(self, kc):
        built = cached(kc)
        profiler = HotspotProfiler(mode="block")
        run(built, engine="superblock", profiler=profiler)
        report = profiler.report(top=5)
        assert report["mode"] == "block"
        total = report["total_instructions"]
        assert total > 0
        assert sum(r["fraction"] for r in report["functions"]) == (
            pytest.approx(1.0)
        )
        assert len(report["pcs"]) <= 5


class TestTimeline:
    def _doe_timeline(self, kc, **kwargs):
        built = cached(kc)
        timeline = TimelineRecorder(**kwargs)
        model = DoeModel(issue_width=1)
        run(built, engine="superblock", cycle_model=model,
            timeline=timeline, max_instructions=2_000)
        return timeline

    def test_valid_chrome_trace(self, kc):
        timeline = self._doe_timeline(kc)
        doc = json.loads(json.dumps(timeline.to_dict()))
        events = doc["traceEvents"]
        assert events, "no events recorded"
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0
        names = [e for e in events if e["name"] == "thread_name"]
        assert names and all(
            e["args"]["name"].startswith("slot ") for e in names
        )

    def test_event_cap_drops_and_marks(self, kc):
        timeline = self._doe_timeline(kc, max_events=50)
        assert len(timeline.events) == 50
        assert timeline.dropped > 0
        doc = timeline.to_dict()
        assert any("truncated" in e["name"] for e in doc["traceEvents"])

    def test_aie_emits_events(self, kc):
        built = cached(kc)
        timeline = TimelineRecorder()
        run(built, engine="predict", cycle_model=AieModel(),
            timeline=timeline, max_instructions=500)
        assert any(e["ph"] == "X" for e in timeline.events)

    def test_write_roundtrip(self, kc, tmp_path):
        timeline = self._doe_timeline(kc)
        path = tmp_path / "t.trace.json"
        timeline.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestMetricsReport:
    def test_metrics_match_stats(self, kc):
        built = cached(kc)
        result = run(built, engine="superblock", collect_metrics=True)
        metrics = result.metrics
        stats = result.stats
        assert metrics["sim.executed_instructions"] == (
            stats.executed_instructions
        )
        assert metrics["sim.decode.decoded_instructions"] == (
            stats.decoded_instructions
        )
        assert metrics["sim.engine"] == "superblock"
        assert metrics["sim.superblock.blocks_executed"] > 0
        assert result.telemetry["schema_version"] == SCHEMA_VERSION

    def test_model_and_memory_metrics(self, kc):
        built = cached(kc)
        model = DoeModel(issue_width=1)
        result = run(built, engine="superblock", cycle_model=model,
                     collect_metrics=True)
        metrics = result.metrics
        assert metrics["cycles.doe.cycles"] == model.cycles
        assert metrics["mem.cache.l1.accesses"] == (
            metrics["mem.cache.l1.hits"] + metrics["mem.cache.l1.misses"]
        )

    def test_collect_from_stats_only(self):
        stats = SimStats(executed_instructions=7, executed_slots=7)
        metrics = collect_run_metrics(stats=stats)
        assert metrics["sim.executed_instructions"] == 7

    def test_report_render_and_write(self, kc, tmp_path):
        built = cached(kc)
        profiler = HotspotProfiler(mode="block")
        result = run(built, engine="superblock", profiler=profiler)
        doc = build_run_report(
            None, stats=result.stats, profiler=profiler,
            debug_info=result.program.debug_info,
            engine="superblock", workload=SMALL,
        )
        path = tmp_path / "m.json"
        write_report(doc, str(path))
        loaded = json.loads(path.read_text())
        text = render_report(loaded)
        assert "hot functions" in text
        assert "sim.executed_instructions" in text


class TestTracerLifecycle:
    """Satellite: the trace stream survives simulator aborts."""

    BAD_WORD_ASM = (
        ".global $risc$main\n$risc$main:\n"
        "addi r9, r0, 5\n.word 0xee000000\nhalt\n"
    )

    def test_close_flushes_on_abort(self, arch, tmp_path):
        from repro.binutils.assembler import Assembler
        from repro.binutils.linker import link
        from repro.binutils.loader import load_executable
        from repro.sim.interpreter import Interpreter

        obj = Assembler(arch).assemble(self.BAD_WORD_ASM, "bad.s")
        elf, _ = link([obj], arch, entry_symbol="$risc$main", entry_isa=0)
        path = tmp_path / "abort.trc"
        with pytest.raises(SimulationError):
            with Tracer.to_file(str(path)) as tracer:
                program = load_executable(elf, arch)
                Interpreter(program.state, tracer=tracer).run()
        assert tracer.closed
        assert tracer.stream.closed
        # The instruction executed before the fault reached the file.
        assert "addi" in path.read_text()

    def test_close_idempotent_and_external_stream_kept_open(self, tmp_path):
        import io

        stream = io.StringIO()
        tracer = Tracer(stream=stream, keep_records=False)
        tracer.close()
        tracer.close()
        assert not stream.closed  # not owned: only flushed

    def test_cli_run_closes_trace_on_abort(self, tmp_path, capsys):
        from repro.binutils.assembler import Assembler
        from repro.binutils.linker import link
        from repro.adl.kahrisma import KAHRISMA
        from repro.cli import main

        obj = Assembler(KAHRISMA).assemble(self.BAD_WORD_ASM, "bad.s")
        elf_obj, _ = link([obj], KAHRISMA,
                          entry_symbol="$risc$main", entry_isa=0)
        elf = tmp_path / "bad.elf"
        elf.write_bytes(elf_obj.write())
        trace = tmp_path / "bad.trc"
        with pytest.raises(SimulationError):
            main(["run", str(elf), "--trace", str(trace)])
        assert "addi" in trace.read_text()


class TestCliTelemetry:
    @pytest.fixture()
    def app_elf(self, tmp_path):
        from repro.cli import main

        kc = tmp_path / "app.kc"
        kc.write_text(
            "int main() { int s; int i; s = 0;"
            " for (i = 0; i < 50; i = i + 1) { s = s + i; }"
            " print_int(s); return 0; }\n"
        )
        elf = str(tmp_path / "app.elf")
        assert main(["compile", str(kc), "-o", elf]) == 0
        return elf

    def test_run_with_all_telemetry_flags(self, app_elf, tmp_path, capsys):
        from repro.cli import main

        metrics = str(tmp_path / "m.json")
        timeline = str(tmp_path / "t.trace.json")
        rc = main(["run", app_elf, "--model", "doe", "--profile",
                   "--metrics", metrics, "--timeline", timeline])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hot functions" in out
        doc = json.load(open(metrics))
        assert doc["schema"] == "kahrisma-telemetry"
        assert doc["metrics"]["sim.executed_instructions"] > 0
        trace = json.load(open(timeline))
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_timeline_requires_model(self, app_elf, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", app_elf, "--timeline",
                  str(tmp_path / "t.json")])

    def test_report_subcommand(self, app_elf, tmp_path, capsys):
        from repro.cli import main

        metrics = str(tmp_path / "m.json")
        main(["run", app_elf, "--metrics", metrics])
        capsys.readouterr()
        assert main(["report", metrics, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "sim.executed_instructions" in out
