"""Interpreter: loop variants, prediction, parallel-op semantics, stats."""

import pytest

from repro.adl.kahrisma import ISA_VLIW2, ISA_VLIW4, KAHRISMA
from repro.sim.decode_cache import DecodeCache
from repro.sim.errors import DecodeError
from repro.sim.interpreter import Interpreter
from repro.sim.state import ProcessorState, TEXT_BASE
from repro.sim.syscalls import Syscalls


def make_state(target, words, isa_id=0, base=TEXT_BASE):
    state = ProcessorState(KAHRISMA, isa_id=isa_id)
    for i, word in enumerate(words):
        state.mem.store4(base + 4 * i, word)
    state.ip = base
    state.setup_stack()
    Syscalls().install(state)
    return state


def enc(table, name, **fields):
    return table.by_name[name].encode(fields)


@pytest.fixture()
def loop_words(risc_table):
    """r6 = sum(1..10); then halt.  33 dynamic instructions."""
    return [
        enc(risc_table, "addi", rd=5, rs1=0, imm=10),
        enc(risc_table, "addi", rd=6, rs1=0, imm=0),
        enc(risc_table, "add", rd=6, rs1=6, rs2=5),
        enc(risc_table, "addi", rd=5, rs1=5, imm=-1),
        enc(risc_table, "bne", rs1=5, rs2=0, imm=-3),
        enc(risc_table, "halt"),
    ]


class TestLoopVariants:
    @pytest.mark.parametrize(
        "cache,predict",
        [(True, True), (True, False), (False, False)],
    )
    def test_all_variants_agree(self, target, loop_words, cache, predict):
        state = make_state(target, loop_words)
        interp = Interpreter(
            state, use_decode_cache=cache, use_prediction=predict
        )
        stats = interp.run()
        assert state.regs[6] == 55
        assert stats.executed_instructions == 33

    def test_full_loop_agrees(self, target, loop_words):
        state = make_state(target, loop_words)
        stats = Interpreter(state, ip_history=16).run()
        assert state.regs[6] == 55
        assert stats.executed_instructions == 33

    def test_decode_counts(self, target, loop_words):
        state = make_state(target, loop_words)
        interp = Interpreter(state)
        stats = interp.run()
        # 6 static instructions decoded once each.
        assert stats.decoded_instructions == 6
        assert stats.decode_avoidance == pytest.approx(1 - 6 / 33)
        # Prediction misses only on the first visit of each edge target.
        assert stats.prediction_hits + stats.cache_lookups == 33
        assert stats.prediction_hits > 20

    def test_nocache_decodes_every_instruction(self, target, loop_words):
        state = make_state(target, loop_words)
        stats = Interpreter(state, use_decode_cache=False).run()
        assert stats.decoded_instructions == 33
        assert stats.decode_avoidance == 0.0

    def test_max_instructions_budget(self, target, loop_words):
        state = make_state(target, loop_words)
        stats = Interpreter(state).run(max_instructions=10)
        assert stats.executed_instructions == 10
        assert not state.halted


class TestParallelSemantics:
    def test_bundle_reads_before_writes(self, target, risc_table):
        """{r1<-r2 ; r2<-r1} swaps — the paper's Section V-B semantics."""
        vliw2 = target.optable(ISA_VLIW2)
        words = [
            enc(risc_table, "add", rd=1, rs1=2, rs2=0),
            enc(risc_table, "add", rd=2, rs1=1, rs2=0),
            enc(risc_table, "halt"),
            0,
        ]
        state = make_state(target, words, isa_id=ISA_VLIW2)
        state.regs[1] = 111
        state.regs[2] = 222
        Interpreter(state).run()
        assert state.regs[1] == 222
        assert state.regs[2] == 111

    def test_store_and_load_same_bundle(self, target, risc_table):
        """A load beside a store sees memory from before the bundle."""
        vliw2 = target.optable(ISA_VLIW2)
        words = [
            enc(risc_table, "sw", rt=5, rs1=10, imm=0),
            enc(risc_table, "lw", rd=6, rs1=10, imm=0),
            enc(risc_table, "halt"),
            0,
        ]
        state = make_state(target, words, isa_id=ISA_VLIW2)
        state.regs[5] = 77
        state.regs[10] = 0x8000
        state.mem.store4(0x8000, 13)
        Interpreter(state).run()
        assert state.regs[6] == 13          # pre-bundle memory value
        assert state.mem.load4(0x8000) == 77  # store committed after

    def test_zero_register_immune_in_bundles(self, target, risc_table):
        words = [
            enc(risc_table, "addi", rd=0, rs1=0, imm=99),
            enc(risc_table, "addi", rd=1, rs1=0, imm=5),
            enc(risc_table, "halt"),
            0,
        ]
        state = make_state(target, words, isa_id=ISA_VLIW2)
        Interpreter(state).run()
        assert state.regs[0] == 0
        assert state.regs[1] == 5


class TestIsaSwitching:
    def test_switchtarget_redirects_decoding(self, target, risc_table):
        # RISC switch, then a 4-op VLIW bundle, then halt.
        words = [
            enc(risc_table, "switchtarget", imm=ISA_VLIW4),
            # vliw4 bundle at +4
            enc(risc_table, "addi", rd=1, rs1=0, imm=1),
            enc(risc_table, "addi", rd=2, rs1=0, imm=2),
            enc(risc_table, "addi", rd=3, rs1=0, imm=3),
            enc(risc_table, "addi", rd=4, rs1=0, imm=4),
            # second bundle: halt
            enc(risc_table, "halt"),
            0, 0, 0,
        ]
        state = make_state(target, words)
        stats = Interpreter(state).run()
        assert [state.regs[i] for i in (1, 2, 3, 4)] == [1, 2, 3, 4]
        assert stats.isa_switches == 1
        assert stats.executed_instructions == 3  # switch + 2 bundles

    def test_decode_cache_keyed_by_isa(self, target, risc_table):
        cache = DecodeCache(target)
        state = make_state(
            target,
            [enc(risc_table, "addi", rd=1, rs1=0, imm=7)] * 4,
        )
        risc_dec = cache.lookup(state.mem, 0, TEXT_BASE)
        vliw_dec = cache.lookup(state.mem, ISA_VLIW4, TEXT_BASE)
        assert risc_dec is not vliw_dec
        assert risc_dec.size == 4 and vliw_dec.size == 16
        assert len(cache) == 2
        assert cache.lookup(state.mem, 0, TEXT_BASE) is risc_dec


class TestErrors:
    def test_decode_error_carries_context(self, target):
        state = ProcessorState(KAHRISMA)
        state.mem.store4(TEXT_BASE, 0xEE000000)
        state.ip = TEXT_BASE
        state.setup_stack()
        with pytest.raises(DecodeError) as excinfo:
            Interpreter(state).run(max_instructions=10)
        assert "0xee000000" in str(excinfo.value)

    def test_ip_history_recorded(self, target, loop_words):
        state = make_state(target, loop_words)
        interp = Interpreter(state, ip_history=8)
        interp.run()
        assert len(interp.ip_history) == 8
        assert interp.ip_history[-1] == TEXT_BASE + 20  # the halt
