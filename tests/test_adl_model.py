"""Unit tests for the ADL data model."""

import pytest
from hypothesis import given, strategies as st

from repro.adl.model import (
    AdlError,
    Architecture,
    Field,
    Isa,
    Operation,
    Register,
    RegisterFile,
)


class TestField:
    def test_width_and_mask(self):
        f = Field("opcode", 31, 24)
        assert f.width == 8
        assert f.mask == 0xFF000000

    def test_extract_unsigned(self):
        f = Field("rd", 23, 19)
        word = 0b00000_10110 << 18  # rd bits hold 0b01011
        assert f.extract(0x00B80000) == 0x17

    def test_extract_signed(self):
        f = Field("imm", 13, 0, signed=True)
        assert f.extract(0x3FFF) == -1
        assert f.extract(0x1FFF) == 8191
        assert f.extract(0x2000) == -8192

    def test_insert_signed_range_checked(self):
        f = Field("imm", 13, 0, signed=True)
        assert f.insert(-1) == 0x3FFF
        with pytest.raises(AdlError):
            f.insert(8192)
        with pytest.raises(AdlError):
            f.insert(-8193)

    def test_insert_unsigned_range_checked(self):
        f = Field("imm", 13, 0)
        with pytest.raises(AdlError):
            f.insert(-1)
        with pytest.raises(AdlError):
            f.insert(1 << 14)

    def test_bad_bit_range_rejected(self):
        with pytest.raises(AdlError):
            Field("x", 5, 6)
        with pytest.raises(AdlError):
            Field("x", 32, 0)

    def test_const_must_fit(self):
        with pytest.raises(AdlError):
            Field("opcode", 31, 24, const=0x100)

    @given(st.integers(0, 31), st.integers(0, 31))
    def test_extract_insert_roundtrip(self, hi, lo):
        if lo > hi:
            hi, lo = lo, hi
        f = Field("f", hi, lo)
        limit = 1 << f.width
        for value in (0, 1, limit - 1, limit // 2):
            assert f.extract(f.insert(value)) == value


class TestRegisterFile:
    def test_dense_indices_required(self):
        with pytest.raises(AdlError):
            RegisterFile("bad", (Register("r0", 0), Register("r2", 2)))

    def test_lookup(self):
        rf = RegisterFile(
            "gpr", (Register("r0", 0, "zero"), Register("r1", 1, "sp"))
        )
        assert rf.by_name("r1").index == 1
        assert rf.by_role("zero")[0].name == "r0"
        assert len(rf) == 2
        with pytest.raises(KeyError):
            rf.by_name("r9")


def _dummy_op(name="op", opcode=1):
    return Operation(
        name=name,
        size=4,
        fields=(
            Field("opcode", 31, 24, const=opcode, role="opcode"),
            Field("rd", 23, 19, role="reg_dst"),
            Field("imm", 13, 0, signed=True, role="imm"),
        ),
        behavior="W(rd, imm)",
        dst_fields=("rd",),
    )


class TestOperation:
    def test_const_detection(self):
        op = _dummy_op(opcode=0x42)
        word = 0x42 << 24
        assert op.matches(word)
        assert not op.matches(0x41 << 24)

    def test_value_fields_exclude_consts(self):
        op = _dummy_op()
        assert [f.name for f in op.value_fields] == ["rd", "imm"]

    def test_duplicate_field_rejected(self):
        with pytest.raises(AdlError):
            Operation(
                name="bad", size=4,
                fields=(Field("a", 31, 24, const=0), Field("a", 23, 16)),
                behavior="pass",
            )

    def test_unknown_src_field_rejected(self):
        with pytest.raises(AdlError):
            Operation(
                name="bad", size=4,
                fields=(Field("opcode", 31, 24, const=0),),
                behavior="pass",
                src_fields=("rs1",),
            )

    def test_kind_predicates(self):
        op = _dummy_op()
        assert not op.is_control
        assert not op.accesses_memory


class TestIsaAndArchitecture:
    def test_instr_size_scales_with_width(self):
        op = _dummy_op()
        isa = Isa(ident=0, name="w4", issue_width=4, operations=(op,))
        assert isa.instr_size == 16

    def test_width_must_be_positive(self):
        with pytest.raises(AdlError):
            Isa(ident=0, name="bad", issue_width=0, operations=())

    def test_duplicate_isa_ids_rejected(self):
        op = _dummy_op()
        rf = RegisterFile("gpr", (Register("r0", 0),))
        isas = (
            Isa(0, "a", 1, (op,)),
            Isa(0, "b", 2, (op,)),
        )
        with pytest.raises(AdlError):
            Architecture("arch", rf, isas)

    def test_default_isa_must_exist(self):
        op = _dummy_op()
        rf = RegisterFile("gpr", (Register("r0", 0),))
        with pytest.raises(AdlError):
            Architecture("arch", rf, (Isa(1, "a", 1, (op,)),), default_isa=0)

    def test_lookup_by_id_and_name(self, arch):
        assert arch.isa(0).name == "risc"
        assert arch.isa_named("vliw4").ident == 2
        with pytest.raises(KeyError):
            arch.isa(99)
        with pytest.raises(KeyError):
            arch.isa_named("vliw3")
