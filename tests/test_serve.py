"""Simulation-as-a-service (``repro.serve``).

Three layers, tested bottom-up:

* protocol/scheduler unit tests — spec validation at the HTTP
  boundary, priority order, FIFO tiebreaks, per-tenant concurrency
  caps, cross-tenant fairness, queue-depth admission;
* :func:`repro.serve.workers.execute_job` in-process — the worker body
  without any process pool: done/cancelled/failed terminal states,
  live event relay, resumable cancel checkpoints that replay to the
  exact straight-run totals;
* one real server (worker processes + asyncio HTTP front end, shared
  for the class) driven through :class:`KahrismaClient` and ``kahrisma
  submit`` — lifecycle, relayed NDJSON schema validity, tenant limits
  over HTTP, mid-run cancellation, /metrics exposition.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.framework import pipeline
from repro.programs import load_program
from repro.serve import (
    JobSpec,
    QueueFull,
    Scheduler,
    ServerConfig,
    SpecError,
    TenantLimits,
    start_in_thread,
)
from repro.serve.client import KahrismaClient, ServeError
from repro.serve.protocol import Job, job_id_new
from repro.serve.workers import WorkerPool, execute_job
from repro.sim.interpreter import CANCEL_SLICE
from repro.telemetry.stream import validate_stream_text


def ndjson(events) -> str:
    return "\n".join(json.dumps(e, sort_keys=True) for e in events)


class TestJobSpec:
    def test_minimal_program_spec(self):
        spec = JobSpec.from_doc({"program": "dct4x4"})
        assert spec.engine == "superblock"
        assert spec.tenant == "default"
        assert spec.workload == "dct4x4"

    def test_source_spec(self):
        spec = JobSpec.from_doc({"source": "int main() { return 0; }",
                                 "label": "mini"})
        assert spec.program is None
        assert spec.workload == "mini"

    def test_program_xor_source(self):
        with pytest.raises(SpecError, match="exactly one"):
            JobSpec.from_doc({})
        with pytest.raises(SpecError, match="exactly one"):
            JobSpec.from_doc({"program": "dct4x4", "source": "x"})

    def test_unknown_fields_rejected(self):
        with pytest.raises(SpecError, match="unknown job fields: bogus"):
            JobSpec.from_doc({"program": "dct4x4", "bogus": 1})

    def test_enum_fields_validated(self):
        for field, value in (
            ("program", "nonesuch"), ("engine", "warp"),
            ("model", "quantum"), ("branch_predictor", "oracle"),
            ("isa", "arm"),
        ):
            with pytest.raises(SpecError):
                JobSpec.from_doc({"program": "dct4x4", field: value})

    def test_integer_fields_validated(self):
        with pytest.raises(SpecError, match="priority"):
            JobSpec.from_doc({"program": "dct4x4", "priority": "high"})
        with pytest.raises(SpecError, match="max_instructions"):
            JobSpec.from_doc({"program": "dct4x4",
                              "max_instructions": 0})
        with pytest.raises(SpecError, match="tenant"):
            JobSpec.from_doc({"program": "dct4x4", "tenant": ""})

    def test_doc_roundtrip(self):
        spec = JobSpec.from_doc({"program": "fft", "engine": "aot",
                                 "priority": 3})
        assert JobSpec.from_doc(spec.to_doc()) == spec

    def test_job_ids_unique_and_monotonic(self):
        ids = [job_id_new() for _ in range(5)]
        assert len(set(ids)) == 5
        assert ids == sorted(ids)


def make_job(tenant="default", priority=10):
    return Job(id=job_id_new(),
               spec=JobSpec(program="dct4x4", tenant=tenant,
                            priority=priority))


class TestScheduler:
    def test_priority_then_fifo_within_tenant(self):
        sched = Scheduler(limits=TenantLimits(max_running=10))
        low = make_job(priority=20)
        first = make_job(priority=5)
        second = make_job(priority=5)
        for job in (low, first, second):
            sched.submit(job)
        order = [sched.acquire(), sched.acquire(), sched.acquire()]
        assert order == [first, second, low]

    def test_per_tenant_running_cap(self):
        sched = Scheduler(limits=TenantLimits(max_running=1))
        a1, a2 = make_job("a"), make_job("a")
        sched.submit(a1)
        sched.submit(a2)
        assert sched.acquire() is a1
        assert sched.acquire() is None  # tenant a is at its cap
        sched.release(a1)
        assert sched.acquire() is a2

    def test_fairness_least_running_tenant_first(self):
        sched = Scheduler(limits=TenantLimits(max_running=4))
        hog = [make_job("hog", priority=1) for _ in range(3)]
        for job in hog:
            sched.submit(job)
        running = [sched.acquire(), sched.acquire()]
        assert all(j.spec.tenant == "hog" for j in running)
        # A fresh tenant's first job beats the hog's third, despite
        # the hog queueing earlier at a better priority.
        newcomer = make_job("newcomer", priority=50)
        sched.submit(newcomer)
        assert sched.acquire() is newcomer

    def test_tenant_queue_depth_rejects(self):
        sched = Scheduler(limits=TenantLimits(max_queued=2))
        sched.submit(make_job("t"))
        sched.submit(make_job("t"))
        with pytest.raises(QueueFull) as excinfo:
            sched.submit(make_job("t"))
        assert excinfo.value.scope == "tenant"
        sched.submit(make_job("other"))  # other tenants unaffected
        assert sched.rejected_tenant == 1

    def test_global_depth_rejects(self):
        sched = Scheduler(limits=TenantLimits(max_queued=99),
                          max_depth=2)
        sched.submit(make_job("a"))
        sched.submit(make_job("b"))
        with pytest.raises(QueueFull) as excinfo:
            sched.submit(make_job("c"))
        assert excinfo.value.scope == "global"

    def test_per_tenant_override(self):
        sched = Scheduler(
            limits=TenantLimits(max_running=1),
            per_tenant={"vip": TenantLimits(max_running=3)},
        )
        jobs = [make_job("vip") for _ in range(3)]
        for job in jobs:
            sched.submit(job)
        assert [sched.acquire() for _ in range(3)] == jobs

    def test_remove_queued(self):
        sched = Scheduler()
        job, other = make_job(), make_job()
        sched.submit(job)
        sched.submit(other)
        assert sched.remove(job)
        assert not sched.remove(job)  # already gone
        assert sched.acquire() is other
        assert sched.cancelled_queued == 1

    def test_metrics_shape(self):
        sched = Scheduler()
        job = make_job()
        sched.submit(job)
        sched.acquire()
        sched.release(job)
        metrics = sched.metrics()
        assert metrics["serve.scheduler.submitted"] == 1
        assert metrics["serve.scheduler.dispatched"] == 1
        assert metrics["serve.scheduler.completed"] == 1
        assert metrics["serve.scheduler.depth"] == 0
        assert all(k.startswith("serve.scheduler.") for k in metrics)


class TestExecuteJob:
    """The worker body in-process: no pool, fully deterministic."""

    def test_done_with_report_and_events(self):
        seen = []
        result = execute_job(
            "job-x", JobSpec(program="dct4x4", engine="superblock",
                             heartbeat_every=20_000),
            emit=seen.append, use_plan_cache=False,
        )
        assert result["state"] == "done"
        assert result["exit_code"] == 0
        assert result["instructions"] == 121_000
        assert result["halted"] is True
        assert result["report"]["schema"] == "kahrisma-telemetry"
        validate_stream_text(ndjson(seen))
        types = [e["type"] for e in seen]
        assert types[0] == "run-start" and types[-1] == "run-end"
        assert "heartbeat" in types

    def test_cancel_then_resume_matches_straight_run(self, tmp_path):
        fired = {"n": 0}

        def cancel_after_two_slices():
            fired["n"] += 1
            return fired["n"] > 2

        cancelled = execute_job(
            "job-c", JobSpec(program="dct4x4", engine="cache",
                             heartbeat_every=10_000),
            cancel=cancel_after_two_slices,
            checkpoint_dir=str(tmp_path),
            use_plan_cache=False,
        )
        assert cancelled["state"] == "cancelled"
        assert 0 < cancelled["instructions"] < 121_000
        assert cancelled["checkpoint"]
        resumed = execute_job(
            "job-r", JobSpec(program="dct4x4", engine="cache",
                             resume_from=cancelled["checkpoint"]),
            use_plan_cache=False,
        )
        assert resumed["state"] == "done"
        # Resumed totals are bitwise those of an uninterrupted run.
        assert resumed["instructions"] == 121_000
        assert resumed["exit_code"] == 0
        straight = execute_job(
            "job-s", JobSpec(program="dct4x4", engine="cache"),
            use_plan_cache=False,
        )
        assert resumed["output"] == straight["output"][
            len(straight["output"]) - len(resumed["output"]):
        ] or resumed["output"] == straight["output"]

    def test_build_failure_is_failed_state(self):
        result = execute_job(
            "job-f", JobSpec(source="int main( { broken"),
            use_plan_cache=False,
        )
        assert result["state"] == "failed"
        assert result["error"]

    def test_cycle_model_job(self):
        result = execute_job(
            "job-m", JobSpec(program="dct4x4", model="doe"),
            use_plan_cache=False,
        )
        assert result["state"] == "done"
        assert result["cycles"] > 0

    def test_warm_plan_cache_shared_across_jobs(self, tmp_path):
        spec = JobSpec(program="dct4x4", engine="superblock")
        cold = execute_job("job-1", spec, build_cache={},
                           plan_cache_dir=str(tmp_path))
        warm = execute_job("job-2", spec, build_cache={},
                           plan_cache_dir=str(tmp_path))
        cold_m = cold["report"]["metrics"]
        warm_m = warm["report"]["metrics"]
        assert cold_m["sim.superblock.translations"] > 0
        assert warm_m["sim.superblock.translations"] == 0
        assert warm_m["sim.superblock.plan_cache_hits"] > 0


@pytest.fixture(scope="class")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    config = ServerConfig(
        port=0, workers=2,
        tenant_max_running=1,
        tenant_max_queued=3,
        checkpoint_dir=str(tmp / "checkpoints"),
        plan_cache_dir=str(tmp / "plans"),
    )
    handle = start_in_thread(config)
    yield handle
    handle.stop()


@pytest.fixture(scope="class")
def client(server):
    return KahrismaClient(server.base_url)


class TestServerEndToEnd:
    """One real server (2 worker processes) shared by the class."""

    def test_health(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["workers"] == 2

    def test_submit_wait_result(self, client):
        job = client.submit({"program": "dct4x4",
                             "engine": "superblock"})
        assert job["state"] in ("queued", "running")
        result = client.wait(job["id"], timeout=120)
        assert result["state"] == "done"
        assert result["exit_code"] == 0
        assert result["instructions"] == 121_000
        assert "3 -17149" in result["output"]
        status = client.status(job["id"])
        assert status["state"] == "done"
        assert status["worker"] in (0, 1)

    def test_relayed_stream_schema_valid_and_gap_free(self, client):
        job = client.submit({"program": "fft", "engine": "superblock",
                             "heartbeat_every": 10_000})
        events = list(client.events(job["id"]))
        parsed = validate_stream_text(ndjson(events))
        seqs = [e["seq"] for e in parsed]
        assert seqs == list(range(len(seqs)))
        types = [e["type"] for e in parsed]
        assert types[0] == "run-start" and types[-1] == "run-end"
        assert "heartbeat" in types
        result = client.wait(job["id"], timeout=60)
        assert result["state"] == "done"

    def test_bad_spec_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit({"program": "nonesuch"})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.submit({"program": "dct4x4", "bogus": 1})
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.status("job-00000-999999")
        assert excinfo.value.status == 404

    def test_result_before_terminal_is_409(self, client):
        job = client.submit({"program": "djpeg", "engine": "cache",
                             "heartbeat_every": 5_000})
        with pytest.raises(ServeError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 409
        client.cancel(job["id"])
        client.wait(job["id"], timeout=60)

    def test_tenant_queue_depth_is_429(self, client):
        # tenant cap: 1 running + 3 queued; the 5th submission trips it.
        jobs = [
            client.submit({"program": "djpeg", "engine": "cache",
                           "heartbeat_every": 5_000,
                           "tenant": "limited"})
            for _ in range(4)
        ]
        with pytest.raises(ServeError) as excinfo:
            client.submit({"program": "dct4x4", "tenant": "limited"})
        assert excinfo.value.status == 429
        for job in jobs:
            client.cancel(job["id"])
        for job in jobs:
            result = client.wait(job["id"], timeout=120)
            assert result["state"] == "cancelled"

    def test_cancel_mid_run_writes_resumable_checkpoint(self, client):
        job = client.submit({"program": "djpeg", "engine": "cache",
                             "heartbeat_every": 5_000,
                             "tenant": "cancel-test"})
        deadline = time.monotonic() + 30
        while (client.status(job["id"])["state"] != "running"
               and time.monotonic() < deadline):
            time.sleep(0.02)
        time.sleep(0.3)
        client.cancel(job["id"])
        result = client.wait(job["id"], timeout=60)
        assert result["state"] == "cancelled"
        assert 0 < result["instructions"] < 1_794_961
        assert result["checkpoint"]
        resumed = client.submit({"program": "djpeg", "engine": "cache",
                                 "resume_from": result["checkpoint"],
                                 "tenant": "cancel-test"})
        final = client.wait(resumed["id"], timeout=120)
        assert final["state"] == "done"
        assert final["instructions"] == 1_794_961
        assert final["exit_code"] == 0

    def test_cancel_queued_job(self, client):
        # One slow running job + one queued behind it (same tenant,
        # running cap 1): cancelling the queued one never dispatches.
        slow = client.submit({"program": "djpeg", "engine": "cache",
                              "heartbeat_every": 5_000,
                              "tenant": "qcancel"})
        queued = client.submit({"program": "dct4x4",
                                "tenant": "qcancel"})
        cancel_doc = client.cancel(queued["id"])
        assert cancel_doc["state"] == "cancelled"
        result = client.wait(queued["id"], timeout=30)
        assert result["state"] == "cancelled"
        assert result.get("checkpoint") is None
        assert result["worker"] is None  # never ran
        client.cancel(slow["id"])
        client.wait(slow["id"], timeout=60)

    def test_jobs_listing_filters_by_tenant(self, client):
        job = client.submit({"program": "dct4x4", "tenant": "lister"})
        client.wait(job["id"], timeout=60)
        mine = client.jobs(tenant="lister")
        assert any(doc["id"] == job["id"] for doc in mine)
        assert all(doc["tenant"] == "lister" for doc in mine)

    def test_metrics_exposition(self, client):
        text = client.metrics_text()
        assert "kahrisma_serve_scheduler_submitted" in text
        assert "kahrisma_serve_jobs_done" in text
        assert "kahrisma_serve_workers 2" in text
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name, _, value = line.partition(" ")
                float(value)  # every sample parses as a number

    def test_concurrent_submissions_all_complete(self, client):
        ids = []
        lock = threading.Lock()

        def one(i):
            job = client.submit({"program": "dct4x4",
                                 "tenant": f"burst-{i % 3}"})
            result = client.wait(job["id"], timeout=180)
            with lock:
                ids.append((job["id"], result["state"]))

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert len(ids) == 6
        assert all(state == "done" for _id, state in ids)


class TestSubmitCli:
    """``kahrisma submit`` against a live server."""

    def test_submit_roundtrip(self, server, capsys):
        from repro.cli import main

        rc = main(["submit", "dct4x4", "--server", server.base_url,
                   "--model", "aie"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "3 -17149" in captured.out
        assert "instructions: 121000" in captured.out
        assert "cycles:" in captured.out
        assert "submitted job-" in captured.err

    def test_submit_events_stdout_pure(self, server, capsys):
        from repro.cli import main

        rc = main(["submit", "dct4x4", "--server", server.base_url,
                   "--events", "-", "--follow"])
        captured = capsys.readouterr()
        assert rc == 0
        events = validate_stream_text(captured.out)
        assert [e["type"] for e in events][-1] == "run-end"
        assert "\r" not in captured.out
        assert "job:" in captured.err  # summary moved to stderr

    def test_submit_source_file(self, server, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "mini.kc"
        src.write_text("int main() { print_int(41 + 1); return 0; }\n")
        rc = main(["submit", str(src), "--server", server.base_url])
        captured = capsys.readouterr()
        assert rc == 0
        assert "42" in captured.out

    def test_submit_connection_refused(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="cannot reach"):
            main(["submit", "dct4x4",
                  "--server", "http://127.0.0.1:1",
                  "--timeout", "5"])


class TestStraightVsServed:
    def test_served_run_matches_pipeline_run(self, server):
        """The service must not change simulation semantics."""
        client = KahrismaClient(server.base_url)
        job = client.submit({"program": "qsort", "engine": "superblock",
                             "model": "doe"})
        served = client.wait(job["id"], timeout=120)
        built = pipeline.build(load_program("qsort"), isa="risc",
                               filename="qsort.kc")
        from repro.cycles.doe import DoeModel

        local = pipeline.run(
            built, engine="superblock",
            cycle_model=DoeModel(issue_width=built.issue_width),
        )
        assert served["state"] == "done"
        assert served["instructions"] == (
            local.stats.executed_instructions
        )
        assert served["exit_code"] == local.exit_code
        assert served["cycles"] == local.cycles
        assert served["output"] == local.output


class TestSchedulerGuards:
    """Release/requeue bookkeeping must survive hostile call orders."""

    def test_double_release_is_clamped(self):
        s = Scheduler()
        job = make_job()
        s.submit(job)
        assert s.acquire() is job
        s.release(job)
        assert s.running == 0
        # The reaper failing a job can race a late "done" message:
        # the second release must be a counted no-op, not an
        # underflow that skews the fairness pick forever.
        s.release(job)
        assert s.running == 0
        assert s.completed == 1
        assert s.release_underflows == 1
        assert s.metrics()["serve.scheduler.release_underflows"] == 1

    def test_release_without_acquire_is_counted(self):
        s = Scheduler()
        s.release(make_job())
        assert s.running == 0
        assert s.completed == 0
        assert s.release_underflows == 1

    def test_requeue_keeps_slot_and_position(self):
        s = Scheduler()
        first = make_job(priority=5)
        second = make_job(priority=5)
        s.submit(first)
        s.submit(second)
        assert s.acquire() is first
        s.requeue(first)  # dispatch failed: give the slot back
        assert s.running == 0
        assert s.depth == 2
        assert s.metrics()["serve.scheduler.requeued"] == 1
        assert s.acquire() is first  # kept its place in line
        s.release(first)
        assert s.running == 0
        assert s.release_underflows == 0


class TestStaleCancelRace:
    """Cancellation is job-id-aware: a cancel for a finished job must
    never stop whatever the worker is running *now*."""

    def _drain_until(self, pool, kind, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            msg = pool.messages.get(timeout=timeout)
            if msg[0] == kind and msg[2] == job_id:
                return msg
        raise AssertionError(f"no {kind!r} for {job_id!r} within "
                             f"{timeout}s")

    def test_stale_cancel_cannot_stop_the_next_job(self, tmp_path):
        pool = WorkerPool(1, checkpoint_dir=str(tmp_path))
        try:
            worker = pool.worker(0)
            assert pool.messages.get(timeout=30)[0] == "ready"
            worker.dispatch("job-A", JobSpec(program="dct4x4"))
            done = self._drain_until(pool, "done", "job-A")
            assert done[3]["state"] == "done"
            worker.job_id = None
            # job-B is running when the cancel for the long-finished
            # job-A arrives — the historical race window (an event
            # flag would have stopped job-B here).
            worker.dispatch(
                "job-B",
                JobSpec(program="djpeg", heartbeat_every=50_000,
                        max_instructions=400_000),
            )
            self._drain_until(pool, "event", "job-B")
            worker.cancel("job-A")
            done = self._drain_until(pool, "done", "job-B")
            assert done[3]["state"] == "done"
            assert done[3]["instructions"] == 400_000
        finally:
            pool.shutdown()

    def test_named_cancel_stops_the_running_job(self, tmp_path):
        pool = WorkerPool(1, checkpoint_dir=str(tmp_path))
        try:
            worker = pool.worker(0)
            assert pool.messages.get(timeout=30)[0] == "ready"
            worker.dispatch(
                "job-C", JobSpec(program="djpeg", heartbeat_every=5_000)
            )
            self._drain_until(pool, "event", "job-C")
            worker.cancel("job-C")
            done = self._drain_until(pool, "done", "job-C")
            assert done[3]["state"] == "cancelled"
            assert done[3]["checkpoint"]
        finally:
            pool.shutdown()


class TestDeadWorkerReaper:
    """A worker dying mid-job must not leave the job stuck forever."""

    def test_dead_worker_fails_job_releases_slot_respawns(
        self, tmp_path
    ):
        handle = start_in_thread(ServerConfig(
            port=0, workers=1,
            checkpoint_dir=str(tmp_path / "ckpt"),
            plan_cache_dir=str(tmp_path / "plans"),
        ))
        try:
            client = KahrismaClient(handle.base_url)
            job = client.submit({"program": "djpeg", "engine": "cache",
                                 "heartbeat_every": 5_000})
            deadline = time.monotonic() + 30
            while (client.status(job["id"])["state"] != "running"
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            status = client.status(job["id"])
            assert status["state"] == "running"
            handle.server.pool.worker(
                status["worker"]
            ).process.terminate()
            result = client.wait(job["id"], timeout=30)
            assert result["state"] == "failed"
            assert "died" in result["error"]
            assert "exit code" in result["error"]
            # Slot released and worker respawned: the next job on the
            # only worker runs to completion.
            follow_up = client.submit({"program": "dct4x4"})
            final = client.wait(follow_up["id"], timeout=60)
            assert final["state"] == "done"
            assert handle.server.workers_died >= 1
            assert handle.server.workers_respawned >= 1
            assert handle.server.scheduler.running == 0
            text = client.metrics_text()
            assert "kahrisma_serve_workers_died 1" in text
        finally:
            handle.stop()


class TestHttpHardening:
    """Malformed framing must be a 4xx, never a 500 — and counted."""

    def _raw(self, server, payload: bytes) -> str:
        host, port = server.server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(payload)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        return data.decode("latin-1")

    def test_malformed_content_length_is_400(self, server):
        resp = self._raw(
            server,
            b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        )
        assert resp.startswith("HTTP/1.1 400 ")
        assert "Content-Length" in resp

    def test_negative_content_length_is_400(self, server):
        resp = self._raw(
            server,
            b"POST /jobs HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        )
        assert resp.startswith("HTTP/1.1 400 ")

    def test_too_many_header_fields_is_431(self, server):
        headers = b"".join(
            b"X-Filler-%d: v\r\n" % i for i in range(150)
        )
        resp = self._raw(
            server, b"GET /healthz HTTP/1.1\r\n" + headers + b"\r\n"
        )
        assert resp.startswith("HTTP/1.1 431 ")

    def test_oversized_header_section_is_431(self, server):
        big = b"X-Big: " + b"a" * 40_000 + b"\r\n"
        resp = self._raw(
            server, b"GET /healthz HTTP/1.1\r\n" + big + b"\r\n"
        )
        assert resp.startswith("HTTP/1.1 431 ")

    def test_rejects_counted_in_metrics(self, server):
        self._raw(
            server,
            b"POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        )
        text = KahrismaClient(server.base_url).metrics_text()
        counts = {
            line.split()[0]: float(line.split()[1])
            for line in text.splitlines()
            if line and not line.startswith("#")
        }
        assert counts["kahrisma_serve_http_bad_requests"] >= 1
        assert counts["kahrisma_serve_http_header_rejects"] >= 2


class TestCancelSliceFallback:
    """``cancel=`` polling must work with ``events=None``: the
    interpreter falls back to CANCEL_SLICE-instruction budget slices,
    bounding cancellation latency and still writing a resumable
    checkpoint."""

    @pytest.mark.parametrize("engine", ["superblock", "aot"])
    def test_cancel_bounded_and_resumable(self, engine, tmp_path):
        built = pipeline.build_benchmark("djpeg")
        straight = pipeline.run(built, engine=engine)
        # The poll turns true after the run starts: cancellation must
        # land at the first CANCEL_SLICE boundary, not run to halt.
        polls = iter([False])
        cancelled = pipeline.run(
            built, engine=engine, events=None,
            cancel=lambda: next(polls, True),
            cancel_checkpoint_dir=str(tmp_path / engine),
        )
        assert cancelled.cancelled
        executed = cancelled.stats.executed_instructions
        assert 0 < executed <= CANCEL_SLICE
        assert executed < straight.stats.executed_instructions
        assert cancelled.cancel_checkpoint
        resumed = pipeline.run(
            built, engine=engine,
            resume_from=cancelled.cancel_checkpoint,
        )
        assert not resumed.cancelled
        assert resumed.stats.executed_instructions == (
            straight.stats.executed_instructions
        )
        assert resumed.output == straight.output
        assert resumed.exit_code == straight.exit_code
