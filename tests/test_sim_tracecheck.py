"""Trace comparison tooling (implementation validation, Section V)."""

import pytest

from repro.binutils.loader import load_executable
from repro.sim.interpreter import Interpreter
from repro.sim.tracecheck import (
    diff_architectural_effects,
    diff_traces,
    memory_effects,
    parse_trace_file,
)
from repro.sim.tracing import TraceRecord, Tracer


def make_record(**overrides):
    defaults = dict(
        cycle=1, addr=0x1000, slot=0, opcode="add",
        inputs=((1, 5), (2, 7)), outputs=((3, 12),),
        stores=(), immediates=(),
    )
    defaults.update(overrides)
    return TraceRecord(**defaults)


class TestDiffTraces:
    def test_identical_traces_agree(self):
        a = [make_record(), make_record(opcode="sw",
                                        stores=((4, 0x100, 9),))]
        assert diff_traces(a, list(a)) is None

    def test_opcode_mismatch_located(self):
        a = [make_record(), make_record(opcode="sub")]
        b = [make_record(), make_record(opcode="add")]
        mismatch = diff_traces(a, b)
        assert mismatch.index == 1 and mismatch.field == "opcode"
        assert "sub" in mismatch.format()

    def test_output_value_mismatch(self):
        a = [make_record(outputs=((3, 12),))]
        b = [make_record(outputs=((3, 13),))]
        assert diff_traces(a, b).field == "outputs"

    def test_length_mismatch(self):
        a = [make_record()]
        b = [make_record(), make_record()]
        mismatch = diff_traces(a, b)
        assert mismatch.field == "length"

    def test_cycles_ignored_by_default(self):
        a = [make_record(cycle=1)]
        b = [make_record(cycle=99)]
        assert diff_traces(a, b) is None
        assert diff_traces(a, b, compare_cycles=True).field == "cycle"


class TestArchitecturalEffects:
    def test_store_sequences_compared(self):
        a = [make_record(opcode="sw", stores=((4, 0x100, 1),)),
             make_record(opcode="sw", stores=((4, 0x104, 2),))]
        b = [make_record(opcode="sw",
                         stores=((4, 0x100, 1), (4, 0x104, 2)))]
        # Different grouping, same effect stream.
        assert diff_architectural_effects(a, b) is None
        assert memory_effects(a) == memory_effects(b)

    def test_value_mismatch_detected(self):
        a = [make_record(opcode="sw", stores=((4, 0x100, 1),))]
        b = [make_record(opcode="sw", stores=((4, 0x100, 2),))]
        assert diff_architectural_effects(a, b).field == "store"

    def test_address_comparison_optional(self):
        a = [make_record(opcode="sw", stores=((4, 0x100, 1),))]
        b = [make_record(opcode="sw", stores=((4, 0x200, 1),))]
        assert diff_architectural_effects(a, b) is not None
        assert diff_architectural_effects(
            a, b, compare_addresses=False
        ) is None


class TestTraceFileRoundTrip:
    def test_format_parse_roundtrip(self):
        records = [
            make_record(),
            make_record(cycle=7, addr=0x2004, slot=3, opcode="sw",
                        inputs=((5, 0xDEAD),),
                        outputs=(), stores=((4, 0x8000, 0xBEEF),),
                        immediates=(-8,)),
            make_record(opcode="nop", inputs=(), outputs=()),
        ]
        text = "\n".join(r.format() for r in records)
        parsed = parse_trace_file(text)
        assert diff_traces(records, parsed, compare_cycles=True) is None
        assert [r.addr for r in parsed] == [r.addr for r in records]
        assert [r.slot for r in parsed] == [r.slot for r in records]

    def test_blank_lines_skipped(self):
        assert parse_trace_file("\n\n") == []


class TestSameBinaryValidation:
    def test_interpreter_variants_produce_identical_traces(self, kc):
        built = kc(
            "int main() { int s = 0; for (int i = 0; i < 30; i++) "
            "s += i * i; print_int(s); return 0; }"
        )

        def trace(**kwargs):
            program = load_executable(built.elf, built.arch)
            tracer = Tracer()
            Interpreter(program.state, tracer=tracer, **kwargs).run()
            return tracer.records

        reference = trace()
        assert diff_traces(reference, trace(use_decode_cache=False)) is None
        assert diff_traces(reference, trace(use_prediction=False)) is None
