"""Behaviour-DSL validation tests."""

import pytest

from repro.adl.behavior import BehaviorError, parse_behavior
from repro.adl.kahrisma import OPERATIONS


class TestDslAcceptance:
    def test_all_kahrisma_behaviors_parse(self):
        for op in OPERATIONS:
            parse_behavior(op.name, op.behavior)

    def test_assignment_and_if(self):
        parse_behavior("t", "x = R(rs1) + 1\nif x > 3: W(rd, x)")

    def test_if_else(self):
        parse_behavior("t", "if R(rs1): W(rd, 1)\nelse: W(rd, 0)")

    def test_ternary(self):
        parse_behavior("t", "W(rd, 1 if R(rs1) < R(rs2) else 0)")


class TestDslRejection:
    @pytest.mark.parametrize(
        "bad",
        [
            "for i in range(3): pass",          # loops
            "while True: pass",
            "import os",                          # imports
            "x.y = 1",                            # attributes
            "W(rd, state.regs[0])",               # attribute access
            "a[0] = 1",                           # subscripts
            "f = lambda: 1",                      # lambdas
            "[x for x in y]",                     # comprehensions
            "print(1)",                           # non-intrinsic call
            "def f(): pass",                      # nested functions
            "del x",                              # del
            "W(rd, unknown_helper(1))",           # unknown call
        ],
    )
    def test_disallowed_constructs(self, bad):
        with pytest.raises(BehaviorError):
            parse_behavior("bad", bad)

    def test_syntax_error_wrapped(self):
        with pytest.raises(BehaviorError):
            parse_behavior("bad", "W(rd,")

    def test_tuple_assignment_rejected(self):
        with pytest.raises(BehaviorError):
            parse_behavior("bad", "a, b = 1, 2")
