"""Benchmark workloads: correctness against independent golden models.

Each program prints self-describing results; where feasible the
expected output is recomputed here in Python with bit-exact 32-bit
semantics (dct4x4, fft, qsort), AES is validated against an independent
Python AES-128 implementation, and the JPEG pair is checked for
structural properties (decode error bound, determinism).
"""

import math

import pytest

from repro.programs import PROGRAMS, load_program, program_names

MASK32 = 0xFFFFFFFF


def s32(x):
    x &= MASK32
    return x - (1 << 32) if x & 0x80000000 else x


def run_program(kc, simulate, name, isa="risc"):
    built = kc(load_program(name), isa=isa, filename=f"{name}.kc")
    program, stats = simulate(built)
    return program.output, stats


class TestRegistry:
    def test_seven_programs(self):
        assert sorted(program_names()) == [
            "aes", "cjpeg", "crc32", "dct4x4", "djpeg", "fft", "qsort",
        ]

    def test_sources_load(self):
        for name in program_names():
            source = load_program(name)
            assert "int main()" in source

    def test_unknown_program(self):
        with pytest.raises(KeyError):
            load_program("doom")


class TestDct4x4:
    @staticmethod
    def golden():
        blocks = [((i * 40503) >> 4 & 255) - 128 for i in range(256)]
        mf = [13107, 8066, 8066, 5243]
        v_tab = [10, 13, 13, 16]

        def transpose(m):
            return [list(c) for c in zip(*m)]

        def fwd(x):
            def rows(m):
                out = []
                for r in m:
                    a0, a1 = r[0] + r[3], r[1] + r[2]
                    a2, a3 = r[1] - r[2], r[0] - r[3]
                    out.append([a0 + a1, (a3 << 1) + a2, a0 - a1,
                                a3 - (a2 << 1)])
                return out
            return transpose(rows(transpose(rows(x))))

        def inv(y):
            def rows(m):
                out = []
                for r in m:
                    a0, a1 = r[0] + r[2], r[0] - r[2]
                    a2, a3 = (r[1] >> 1) - r[3], r[1] + (r[3] >> 1)
                    out.append([a0 + a3, a1 + a2, a1 - a2, a0 - a3])
                return out
            return transpose(rows(transpose(rows(y))))

        levels = [0] * 256
        recon = [0] * 256
        for b in range(16):
            x = [[blocks[b * 16 + r * 4 + c] for c in range(4)]
                 for r in range(4)]
            y = fwd(x)
            dq = [[0] * 4 for _ in range(4)]
            for i in range(4):
                for j in range(4):
                    klass = (i & 1) * 2 + (j & 1)
                    value = y[i][j]
                    if value < 0:
                        level = -(((-value) * mf[klass] + 16384) >> 15)
                    else:
                        level = (value * mf[klass] + 16384) >> 15
                    levels[b * 16 + i * 4 + j] = level
                    dq[i][j] = level * v_tab[klass]
            r = inv(dq)
            for i in range(4):
                for j in range(4):
                    recon[b * 16 + i * 4 + j] = r[i][j]
        total_error = 0
        checksum = 0
        for i in range(256):
            rec = (recon[i] + 32) >> 6
            total_error += abs(rec - blocks[i])
            checksum = s32(checksum + levels[i] * (i & 15))
        return f"{total_error} {checksum}\n"

    def test_matches_golden_model(self, kc, simulate):
        out, _stats = run_program(kc, simulate, "dct4x4")
        assert out == self.golden()

    def test_near_lossless_at_qp0(self, kc, simulate):
        out, _stats = run_program(kc, simulate, "dct4x4")
        total_error = int(out.split()[0])
        assert total_error < 16  # a handful of off-by-ones over 256 px


class TestQsort:
    @staticmethod
    def golden():
        seed = 42
        data = []
        for _ in range(1024):
            seed = s32(seed * 1103515245 + 12345)
            data.append((seed >> 8) & 65535)
        data.sort()
        checksum = sum(v * (i & 31) for i, v in enumerate(data))
        return f"1 {s32(checksum)}\n"

    def test_matches_golden_model(self, kc, simulate):
        out, _stats = run_program(kc, simulate, "qsort")
        assert out == self.golden()


class TestFft:
    @staticmethod
    def golden():
        n = 256
        cos_tab = [round(math.cos(2 * math.pi * k / n) * 16384)
                   for k in range(n // 2)]
        sin_tab = [round(math.sin(2 * math.pi * k / n) * 16384)
                   for k in range(n // 2)]
        seed = 777
        re = [0] * n
        im = [0] * n
        for i in range(n):
            seed = s32(seed * 1103515245 + 12345)
            re[i] = ((seed >> 16) & 1023) - 512

        def fft(re_v, im_v, stride):
            size = len(re_v)
            if size == 1:
                return re_v, im_v
            half = size // 2
            ere, eim = fft(re_v[0::2], im_v[0::2], stride * 2)
            ore, oim = fft(re_v[1::2], im_v[1::2], stride * 2)
            out_re = [0] * size
            out_im = [0] * size
            for k in range(half):
                c = cos_tab[k * stride]
                s = sin_tab[k * stride]
                tr = s32(c * ore[k] + s * oim[k]) >> 14
                ti = s32(c * oim[k] - s * ore[k]) >> 14
                out_re[k] = s32(ere[k] + tr)
                out_im[k] = s32(eim[k] + ti)
                out_re[k + half] = s32(ere[k] - tr)
                out_im[k + half] = s32(eim[k] - ti)
            return out_re, out_im

        fre, fim = fft(re, im, 1)
        check_re = s32(sum(fre[i] * (i & 7) for i in range(n)))
        check_im = s32(sum(fim[i] * (i & 7) for i in range(n)))
        return f"{check_re} {check_im}\n"

    def test_matches_golden_model(self, kc, simulate):
        out, _stats = run_program(kc, simulate, "fft")
        assert out == self.golden()


class TestAes:
    @staticmethod
    def golden():
        """Independent AES-128 (byte-oriented, FIPS-197 reference)."""
        sbox = TestAes._make_sbox()

        def xtime(a):
            return ((a << 1) ^ 0x1B) & 0xFF if a & 0x80 else a << 1

        def words_to_state(words):
            # column-major: word i is column i, MSB first.
            state = [[0] * 4 for _ in range(4)]
            for c in range(4):
                for r in range(4):
                    state[r][c] = (words[c] >> (24 - 8 * r)) & 0xFF
            return state

        def state_to_words(state):
            return [
                sum(state[r][c] << (24 - 8 * r) for r in range(4))
                for c in range(4)
            ]

        def encrypt(block_words, round_keys):
            state = words_to_state(block_words)
            key = words_to_state(round_keys[0:4])
            for r in range(4):
                for c in range(4):
                    state[r][c] ^= key[r][c]
            for rnd in range(1, 10):
                state = [[sbox[b] for b in row] for row in state]
                state = [row[i:] + row[:i] for i, row in enumerate(state)]
                mixed = [[0] * 4 for _ in range(4)]
                for c in range(4):
                    col = [state[r][c] for r in range(4)]
                    mixed[0][c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) \
                        ^ col[2] ^ col[3]
                    mixed[1][c] = col[0] ^ xtime(col[1]) \
                        ^ (xtime(col[2]) ^ col[2]) ^ col[3]
                    mixed[2][c] = col[0] ^ col[1] ^ xtime(col[2]) \
                        ^ (xtime(col[3]) ^ col[3])
                    mixed[3][c] = (xtime(col[0]) ^ col[0]) ^ col[1] \
                        ^ col[2] ^ xtime(col[3])
                key = words_to_state(round_keys[4 * rnd:4 * rnd + 4])
                state = [
                    [mixed[r][c] ^ key[r][c] for c in range(4)]
                    for r in range(4)
                ]
            state = [[sbox[b] for b in row] for row in state]
            state = [row[i:] + row[:i] for i, row in enumerate(state)]
            key = words_to_state(round_keys[40:44])
            state = [
                [state[r][c] ^ key[r][c] for c in range(4)] for r in range(4)
            ]
            return state_to_words(state)

        rcon = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]
        key = [0x2B7E1516, 0x28AED2A6, 0xABF71588, 0x09CF4F3C]
        rk = list(key)
        for i in range(4, 44):
            tmp = rk[i - 1]
            if i % 4 == 0:
                rot = ((tmp << 8) | (tmp >> 24)) & MASK32
                tmp = (
                    (sbox[(rot >> 24) & 255] << 24)
                    | (sbox[(rot >> 16) & 255] << 16)
                    | (sbox[(rot >> 8) & 255] << 8)
                    | sbox[rot & 255]
                )
                tmp ^= rcon[i // 4 - 1] << 24
            rk.append(rk[i - 4] ^ tmp)

        seed = 99
        blocks = []
        for _ in range(64):
            seed = s32(seed * 1103515245 + 12345)
            blocks.append(seed & MASK32)
        out = [0] * 64
        for b in range(16):
            out[4 * b:4 * b + 4] = encrypt(blocks[4 * b:4 * b + 4], rk)
        checksum = 0
        for i in range(64):
            checksum ^= (out[i] + i) & MASK32
        return format(checksum, "08x") + "\n"

    @staticmethod
    def _make_sbox():
        sbox = [0] * 256
        p = q = 1
        sbox[0] = 0x63
        while True:
            p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
            q ^= (q << 1) & 0xFF
            q ^= (q << 2) & 0xFF
            q ^= (q << 4) & 0xFF
            if q & 0x80:
                q ^= 0x09
            x = (
                q
                ^ (((q << 1) | (q >> 7)) & 0xFF)
                ^ (((q << 2) | (q >> 6)) & 0xFF)
                ^ (((q << 3) | (q >> 5)) & 0xFF)
                ^ (((q << 4) | (q >> 4)) & 0xFF)
            )
            sbox[p] = (x ^ 0x63) & 0xFF
            if p == 1:
                break
        return sbox

    def test_known_sbox_values(self):
        sbox = self._make_sbox()
        assert sbox[0x00] == 0x63
        assert sbox[0x53] == 0xED
        assert sbox[0xFF] == 0x16

    def test_matches_independent_aes(self, kc, simulate):
        out, _stats = run_program(kc, simulate, "aes")
        assert out == self.golden()


class TestCrc32:
    @staticmethod
    def golden():
        """Chained zlib CRC-32 over the xorshift32 buffer."""
        import binascii

        seed = 2463534242
        msg = bytearray()
        for _ in range(1024):
            seed ^= (seed << 13) & MASK32
            seed ^= seed >> 17
            seed ^= (seed << 5) & MASK32
            seed &= MASK32
            msg.append(seed & 255)
        crc = 0
        for _ in range(16):
            crc = binascii.crc32(msg, crc)
        return format(crc, "08x") + "\n"

    def test_matches_zlib(self, kc, simulate):
        out, _stats = run_program(kc, simulate, "crc32")
        assert out == self.golden()

    def test_memory_bound_profile(self, kc, simulate):
        """One table load per byte: a substantial memory fraction."""
        _out, stats = run_program(kc, simulate, "crc32")
        assert stats.memory_instruction_fraction > 0.05


class TestJpeg:
    def test_cjpeg_deterministic_and_compresses(self, kc, simulate):
        out, _stats = run_program(kc, simulate, "cjpeg")
        length, checksum = out.split()
        # 16 blocks x 64 coefficients = 1024 raw values; RLE must beat it.
        assert 16 < int(length) < 1024
        out2, _stats = run_program(kc, simulate, "cjpeg")
        assert out == out2

    def test_djpeg_reconstruction_error_bounded(self, kc, simulate):
        out, _stats = run_program(kc, simulate, "djpeg")
        err, _checksum = out.split()
        # Standard JPEG luminance quantisation on a noisy texture:
        # mean absolute error well below random (64) but clearly lossy.
        assert int(err) / 1024 < 16.0

    def test_memory_instruction_fraction_substantial(self, kc, simulate):
        """The paper reports 24.6% memory instructions for cjpeg."""
        _out, stats = run_program(kc, simulate, "cjpeg")
        assert stats.memory_instruction_fraction > 0.05


class TestCrossIsaEquivalence:
    @pytest.mark.parametrize("name", ["dct4x4", "fft", "qsort", "aes",
                                      "crc32"])
    def test_all_widths_agree(self, kc, simulate, name):
        reference, _stats = run_program(kc, simulate, name, isa="risc")
        for isa in ("vliw2", "vliw4", "vliw6", "vliw8"):
            out, _stats = run_program(kc, simulate, name, isa=isa)
            assert out == reference, (name, isa)

    @pytest.mark.parametrize("name", ["cjpeg", "djpeg"])
    def test_jpeg_risc_vs_vliw4(self, kc, simulate, name):
        reference, _stats = run_program(kc, simulate, name, isa="risc")
        out, _stats = run_program(kc, simulate, name, isa="vliw4")
        assert out == reference
