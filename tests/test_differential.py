"""Differential compiler testing.

Two independent oracles:

* optimisation must never change observable behaviour — every workload
  and a corpus of tricky snippets produce identical output with the
  optimiser on and off, across ISAs;
* randomly generated structured programs (hypothesis) are compiled and
  simulated, comparing against direct Python evaluation of the same
  program.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.framework.pipeline import build, run
from repro.programs import load_program

MASK32 = 0xFFFFFFFF


def s32(x):
    x &= MASK32
    return x - (1 << 32) if x & 0x80000000 else x


def outputs(source, *, isa, optimize_ir, filename="<diff>"):
    built = build(source, isa=isa, filename=filename)
    if not optimize_ir:
        from repro.lang.driver import compile_mixed
        from repro.binutils.assembler import Assembler
        from repro.binutils.linker import link
        from repro.binutils.loader import load_executable
        from repro.sim.interpreter import Interpreter
        from repro.adl.kahrisma import KAHRISMA

        compiled = compile_mixed(
            source, KAHRISMA, isa_map={}, default_isa=isa,
            filename=filename, optimize_ir=False,
        )
        obj = Assembler(KAHRISMA).assemble(compiled.assembly, filename)
        elf, _ = link([obj], KAHRISMA,
                      entry_symbol=compiled.entry_symbol,
                      entry_isa=compiled.entry_isa)
        program = load_executable(elf, KAHRISMA)
        Interpreter(program.state).run(max_instructions=50_000_000)
        return program.output
    return run(built).output


TRICKY_SNIPPETS = [
    # shift/mask interactions the optimiser rewrites
    "int f(int x) { return (x * 16) / 4 + (x << 3) - (x & -x); }",
    # branches folded and threaded
    "int f(int x) { if (1) { if (x > 0) return 1; } else return 9; "
    "return -1; }",
    # dead stores to globals must survive DCE
    "int g; int f(int x) { g = x * 2; return g + 1; }",
    # division edge cases must not be folded away
    "int f(int x) { int z = x - x; return 7 / (z + (x == x)) + 5 % "
    "(z + 1); }",
    # copy chains
    "int f(int x) { int a = x; int b = a; int c = b; return c + a; }",
    # loop-carried dependencies
    "int f(int n) { int a = 1; int b = 1; for (int i = 0; i < n; i++) "
    "{ int t = a + b; a = b; b = t; } return b; }",
]


class TestOptimizerPreservesSemantics:
    @pytest.mark.parametrize("snippet", TRICKY_SNIPPETS,
                             ids=[s[:40] for s in TRICKY_SNIPPETS])
    @pytest.mark.parametrize("isa", ["risc", "vliw4"])
    def test_snippets(self, snippet, isa):
        source = (
            snippet + "\n"
            "int main() {\n"
            "    for (int v = -3; v <= 3; v++) {\n"
            "        print_int(f(v));\n"
            "        putchar(' ');\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        optimized = outputs(source, isa=isa, optimize_ir=True)
        plain = outputs(source, isa=isa, optimize_ir=False)
        assert optimized == plain

    @pytest.mark.parametrize("name", ["dct4x4", "qsort", "fft", "crc32"])
    def test_benchmarks(self, name):
        source = load_program(name)
        optimized = outputs(source, isa="risc", optimize_ir=True,
                            filename=f"{name}.kc")
        plain = outputs(source, isa="risc", optimize_ir=False,
                        filename=f"{name}.kc")
        assert optimized == plain


@st.composite
def statement_program(draw):
    """A random straight-line-with-loops program over 4 variables."""
    lines = ["int v0 = 7; int v1 = -3; int v2 = 100; int v3 = 0;"]
    py = ["v0, v1, v2, v3 = 7, -3, 100, 0"]
    n_stmts = draw(st.integers(2, 6))
    for _ in range(n_stmts):
        target = draw(st.sampled_from(["v0", "v1", "v2", "v3"]))
        kind = draw(st.integers(0, 2))
        if kind == 0:
            a = draw(st.sampled_from(["v0", "v1", "v2", "v3"]))
            b = draw(st.integers(-50, 50))
            op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
            lines.append(f"{target} = {a} {op} {b};")
            py.append(f"{target} = s32({a} {op} {b})")
        elif kind == 1:
            a = draw(st.sampled_from(["v0", "v1", "v2", "v3"]))
            b = draw(st.sampled_from(["v0", "v1", "v2", "v3"]))
            op = draw(st.sampled_from(["+", "-", "^"]))
            lines.append(f"{target} = {a} {op} {b};")
            py.append(f"{target} = s32({a} {op} {b})")
        else:
            bound = draw(st.integers(1, 5))
            a = draw(st.sampled_from(["v0", "v1", "v3"]))
            lines.append(
                f"for (int i = 0; i < {bound}; i++) "
                f"{target} = {target} + {a};"
            )
            py.append(f"for _i in range({bound}): "
                      f"{target} = s32({target} + {a})")
    return "\n".join(lines), "\n".join(py)


class TestRandomPrograms:
    @given(program=statement_program())
    @settings(max_examples=25, deadline=None)
    def test_matches_python(self, program):
        kc_body, py_body = program
        source = (
            "int main() {\n" + kc_body + "\n"
            "print_int(v0 ^ v1 ^ v2 ^ v3);\nreturn 0;\n}\n"
        )
        result = run(build(source, isa="risc", filename="<rand>")).output
        env = {"s32": s32}
        exec(py_body, env)
        expected = s32(
            env["v0"] ^ env["v1"] ^ env["v2"] ^ env["v3"]
        )
        assert result.strip() == str(expected)
