"""Compiler front end: lexer, parser, semantic analysis."""

import pytest

from repro.lang.astnodes import (
    BinaryExpr,
    ForStmt,
    FunctionDef,
    IfStmt,
    NumberExpr,
    WhileStmt,
)
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse_program
from repro.lang.sema import SemaError, analyze


class TestLexer:
    def test_numbers(self):
        toks = tokenize("12 0x1F 'a' '\\n'")
        assert [t.value for t in toks[:-1]] == [12, 31, 97, 10]

    def test_keywords_vs_identifiers(self):
        toks = tokenize("int interest")
        assert toks[0].kind == "kw"
        assert toks[1].kind == "ident"

    def test_operators_maximal_munch(self):
        toks = tokenize("a<<=b >>c <= >=")
        texts = [t.text for t in toks if t.kind == "op"]
        assert texts == ["<<=", ">>", "<=", ">="]

    def test_comments(self):
        toks = tokenize("a // line\n/* block\nmore */ b")
        idents = [t.text for t in toks if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_string_literal_with_escapes(self):
        toks = tokenize('"x\\ny"')
        assert toks[0].kind == "string" and toks[0].text == "x\ny"

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        lines = {t.text: t.line for t in toks if t.kind == "ident"}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_errors(self):
        with pytest.raises(LexError):
            tokenize("@")
        with pytest.raises(LexError):
            tokenize("/* unterminated")
        with pytest.raises(LexError):
            tokenize('"unterminated')


class TestParser:
    def test_precedence(self):
        program = parse_program("int main() { return 1 + 2 * 3; }")
        ret = program.functions[0].body.body[0]
        expr = ret.value
        assert isinstance(expr, BinaryExpr) and expr.op == "+"
        assert isinstance(expr.right, BinaryExpr) and expr.right.op == "*"

    def test_statement_forms(self):
        source = """
        int main() {
            int x = 0;
            if (x) { x = 1; } else x = 2;
            while (x < 10) x++;
            for (int i = 0; i < 3; i++) { continue; }
            do { x--; } while (x);
            return x;
        }
        """
        program = parse_program(source)
        body = program.functions[0].body.body
        assert isinstance(body[1], IfStmt)
        assert isinstance(body[2], WhileStmt)
        assert isinstance(body[3], ForStmt)

    def test_globals_with_initializers(self):
        source = """
        int scalar = 42;
        int table[4] = { 1, 2, 3, 4 };
        int sized_by_init[] = { 9, 9 };
        char text[] = "hi";
        int bss_array[100];
        """
        program = parse_program(source)
        by_name = {g.name: g for g in program.globals}
        assert by_name["scalar"].init == 42
        assert by_name["table"].init_list == [1, 2, 3, 4]
        assert by_name["sized_by_init"].array_len == 2
        assert by_name["text"].array_len == 3  # includes NUL
        assert by_name["bss_array"].array_len == 100

    def test_const_expr_initializers(self):
        program = parse_program("int x = (1 << 4) | 3;")
        assert program.globals[0].init == 19

    def test_array_parameter_decays(self):
        program = parse_program("void f(int a[], int n) {}")
        assert program.functions[0].params[0].type.pointers == 1

    def test_unsigned_type(self):
        program = parse_program("unsigned int x = 1; unsigned y = 2;")
        assert all(g.type.unsigned for g in program.globals)

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_program("int main() { return 1 }")  # missing ;
        with pytest.raises(ParseError):
            parse_program("int main() {")
        with pytest.raises(ParseError):
            parse_program("int x = y;")  # non-const initializer
        with pytest.raises(ParseError):
            parse_program("void 3() {}")


class TestSema:
    def check(self, source):
        program = parse_program(source)
        analyze(program)
        return program

    def test_types_annotated(self):
        program = self.check(
            "int g[4]; int main() { int x = g[0] + 1; return x; }"
        )
        decl = program.functions[0].body.body[0]
        assert str(decl.init.type) == "int"

    def test_pointer_decay_annotation(self):
        program = self.check("int g[4]; int* f() { return g; }")
        ret = program.functions[0].body.body[0]
        assert ret.value.type.pointers == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "int main() { return y; }",                   # undeclared
            "int main() { int x; int x; return 0; }",     # redeclared
            "void f() {} void f() {}",                    # dup function
            "int main() { f(); return 0; }",              # undefined call
            "int f(int a) { return a; } int main() { return f(); }",
            "void f() { return 1; }",                     # value from void
            "int f() { return; }",                        # missing value
            "int main() { break; }",                      # break outside
            "int main() { int x; return *x; }",           # deref non-ptr
            "int main() { int x; return x[0]; }",         # index non-ptr
            "int main() { int x; int *p = &x; return 0; }",  # & on local
            "int g[4]; int main() { g = 0; return 0; }",  # assign array
            "int main() { 3 = 4; return 0; }",            # bad lvalue
            "void v; int main() { return 0; }",           # void variable
            "int main() { puts(1, 2); return 0; }",       # libc arity
            "int main(int a, int b, int c, int d, int e) { return 0; }",
        ],
    )
    def test_rejections(self, bad):
        with pytest.raises(SemaError):
            self.check(bad)

    def test_error_carries_location(self):
        with pytest.raises(SemaError) as e:
            self.check("int main() {\n  return y;\n}")
        assert ":2:" in str(e.value)

    def test_libc_functions_visible(self):
        self.check(
            "int main() { print_int(strlen(\"abc\")); return 0; }"
        )

    def test_pointer_arith_types(self):
        self.check(
            "int g[8];\n"
            "int main() {\n"
            "    int *p = g + 2;\n"
            "    int d = p - g;\n"
            "    return *p + d;\n"
            "}\n"
        )
