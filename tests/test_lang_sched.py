"""VLIW list scheduler: dependence and placement invariants.

The invariants are checked over the real blocks of compiled benchmark
functions, which exercise every dependence class the scheduler models.
"""

import pytest

from repro.adl.kahrisma import KAHRISMA
from repro.lang.asmout import MachineOp
from repro.lang.codegen import generate_function
from repro.lang.irgen import generate_ir
from repro.lang.opt import optimize
from repro.lang.parser import parse_program
from repro.lang.sched import schedule_block, schedule_function, schedule_stats
from repro.lang.sema import analyze
from repro.programs import load_program
from repro.targetgen.asmgen import mangle

SOURCES = {
    "dct4x4": load_program("dct4x4"),
    "qsort": load_program("qsort"),
}


def compiled_blocks(source):
    program = parse_program(source)
    sema = analyze(program)
    ir = generate_ir(program, sema)
    optimize(ir)
    blocks = []
    for fn in ir.functions:
        callees = {name: mangle("vliw4", name) for name in sema.functions}
        asm_fn = generate_function(
            fn, KAHRISMA, symbol=mangle("vliw4", fn.name),
            isa_name="vliw4", callee_symbols=callees,
        )
        blocks.extend(b.ops for b in asm_fn.blocks if b.ops)
    return blocks


@pytest.fixture(scope="module", params=sorted(SOURCES))
def blocks(request):
    return compiled_blocks(SOURCES[request.param])


def flatten(bundles):
    return [op for bundle in bundles for op in bundle]


def bundle_of(bundles):
    index = {}
    for i, bundle in enumerate(bundles):
        for op in bundle:
            index[id(op)] = i
    return index


@pytest.mark.parametrize("width", [2, 4, 8])
class TestInvariants:
    def test_all_ops_scheduled_exactly_once(self, blocks, width):
        for ops in blocks:
            bundles = schedule_block(ops, width)
            assert sorted(id(o) for o in flatten(bundles)) == \
                sorted(id(o) for o in ops)

    def test_bundle_width_respected(self, blocks, width):
        for ops in blocks:
            for bundle in schedule_block(ops, width):
                assert 1 <= len(bundle) <= width

    def test_true_dependences_cross_bundles(self, blocks, width):
        for ops in blocks:
            bundles = schedule_block(ops, width)
            where = bundle_of(bundles)
            last_def = {}
            for op in ops:  # program order
                for reg in op.uses:
                    if reg in last_def:
                        producer = last_def[reg]
                        assert where[id(producer)] < where[id(op)], (
                            f"true dep violated: {producer.render()} -> "
                            f"{op.render()}"
                        )
                for reg in op.defs:
                    last_def[reg] = op
                if op.is_barrier:
                    last_def = {}

    def test_memory_order_pessimistic(self, blocks, width):
        for ops in blocks:
            bundles = schedule_block(ops, width)
            where = bundle_of(bundles)
            last_store = None
            for op in ops:
                if op.is_load or op.is_store:
                    if last_store is not None:
                        assert where[id(last_store)] < where[id(op)]
                if op.is_store:
                    last_store = op
                if op.is_barrier:
                    last_store = None

    def test_at_most_one_control_per_bundle(self, blocks, width):
        for ops in blocks:
            for bundle in schedule_block(ops, width):
                controls = sum(1 for op in bundle if op.is_control)
                assert controls <= 1

    def test_branches_terminate_block(self, blocks, width):
        for ops in blocks:
            bundles = schedule_block(ops, width)
            where = bundle_of(bundles)
            branch_bundles = [
                where[id(op)]
                for op in ops
                if op.op.kind == "branch" and op.mnemonic != "jal"
            ]
            if branch_bundles:
                first_branch = min(branch_bundles)
                assert first_branch >= len(bundles) - len(branch_bundles)

    def test_calls_alone_in_bundle(self, blocks, width):
        for ops in blocks:
            for bundle in schedule_block(ops, width):
                if any(op.mnemonic == "jal" for op in bundle):
                    assert len(bundle) == 1


class TestScheduleQuality:
    def test_wider_issue_never_more_bundles(self):
        for ops in compiled_blocks(SOURCES["dct4x4"]):
            counts = [
                len(schedule_block(ops, width)) for width in (1, 2, 4, 8)
            ]
            assert counts == sorted(counts, reverse=True)

    def test_dct_block_packs_well(self):
        """The unrolled DCT must actually exploit the VLIW slots."""
        blocks = compiled_blocks(SOURCES["dct4x4"])
        biggest = max(blocks, key=len)
        bundles = schedule_block(biggest, 8)
        ops_per_bundle = len(biggest) / len(bundles)
        assert ops_per_bundle > 2.0

    def test_empty_block(self):
        assert schedule_block([], 4) == []

    def test_stats_helper(self):
        blocks = compiled_blocks(SOURCES["qsort"])
        bundles = {"b0": schedule_block(blocks[0], 4)}
        ops, slots = schedule_stats(bundles)
        assert ops == len(blocks[0])
        assert slots == len(bundles["b0"])
