"""Debug info (line maps, function ranges) and trace generation."""

import io

from hypothesis import given, settings, strategies as st

from repro.sim.debuginfo import DebugInfo, LineMap
from repro.sim.tracing import Tracer


class TestLineMap:
    def test_range_semantics(self):
        lm = LineMap()
        lm.add(0x100, "a.s", 10)
        lm.add(0x110, "a.s", 12)
        assert lm.lookup(0x0FF) is None
        assert lm.lookup(0x100).line == 10
        assert lm.lookup(0x10C).line == 10
        assert lm.lookup(0x110).line == 12
        assert lm.lookup(0xFFFF).line == 12

    def test_duplicate_address_overwrites(self):
        lm = LineMap()
        lm.add(0x100, "a.s", 1)
        lm.add(0x100, "a.s", 2)
        assert len(lm) == 1
        assert lm.lookup(0x100).line == 2

    def test_encode_decode_roundtrip(self):
        lm = LineMap()
        lm.add(0x100, "main.kc", 3)
        lm.add(0x200, "util.kc", 17)
        lm.add(0x180, "main.kc", 9)
        decoded = LineMap.decode(lm.encode())
        assert [(e.addr, e.file, e.line) for e in decoded] == [
            (0x100, "main.kc", 3),
            (0x180, "main.kc", 9),
            (0x200, "util.kc", 17),
        ]

    def test_shifted(self):
        lm = LineMap()
        lm.add(0x10, "f", 1)
        shifted = lm.shifted(0x1000)
        assert shifted.lookup(0x1010).line == 1

    @given(
        entries=st.lists(
            st.tuples(
                st.integers(0, 0xFFFFFFF0),
                st.sampled_from(["a.s", "b.kc", "λ.kc"]),
                st.integers(0, 1 << 30),
            ),
            min_size=0,
            max_size=30,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, entries):
        lm = LineMap()
        for addr, name, line in entries:
            lm.add(addr, name, line)
        decoded = LineMap.decode(lm.encode())
        assert [(e.addr, e.file, e.line) for e in decoded] == \
            [(e.addr, e.file, e.line) for e in lm]


class TestDebugInfo:
    def test_function_lookup(self):
        dbg = DebugInfo()
        dbg.add_function("$risc$main", 0x1000, 0x40)
        dbg.add_function("$risc$fib", 0x1040, 0x20)
        assert dbg.function_at(0x1000).name == "$risc$main"
        assert dbg.function_at(0x103C).name == "$risc$main"
        assert dbg.function_at(0x1040).name == "$risc$fib"
        assert dbg.function_at(0x1060) is None
        assert dbg.function_at(0x0FFF) is None

    def test_location_format(self):
        dbg = DebugInfo()
        dbg.add_function("$risc$main", 0x1000, 0x40)
        dbg.asm_map.add(0x1000, "app.s", 12)
        dbg.src_map.add(0x1000, "app.kc", 5)
        loc = dbg.lookup(0x1004)
        assert loc.function == "$risc$main"
        assert loc.asm_file == "app.s" and loc.asm_line == 12
        assert loc.src_file == "app.kc" and loc.src_line == 5
        text = loc.format()
        assert "$risc$main" in text and "app.kc:5" in text


class TestTracer:
    def _trace_program(self, kc, simulate):
        from repro.sim.tracing import Tracer

        built = kc(
            "int g = 3;\n"
            "int main() { int y = g * 7; print_int(y); return 0; }"
        )
        tracer = Tracer()
        program, _stats = simulate(built, tracer=tracer)
        return tracer, program

    def test_records_have_paper_fields(self, kc, simulate):
        tracer, _program = self._trace_program(kc, simulate)
        assert tracer.records
        record = next(r for r in tracer.records if r.opcode == "mul")
        assert record.inputs and record.outputs
        assert record.cycle >= 0
        formatted = record.format()
        assert "mul" in formatted and "out:" in formatted

    def test_stream_output(self, kc, simulate):
        from repro.sim.tracing import Tracer

        built = kc("int main() { return 0; }")
        stream = io.StringIO()
        tracer = Tracer(stream=stream, keep_records=False)
        simulate(built, tracer=tracer)
        assert stream.getvalue().count("\n") == tracer.count
        assert tracer.records == []

    def test_limit(self, kc, simulate):
        from repro.sim.tracing import Tracer

        built = kc(
            "int main() { int s = 0; for (int i = 0; i < 50; i++) s += i; "
            "return s; }"
        )
        tracer = Tracer(limit=10)
        simulate(built, tracer=tracer)
        assert len(tracer.records) == 10
