"""Branch-misprediction extension (the paper's Section VIII future work)."""

import pytest

from repro.adl.kahrisma import KAHRISMA
from repro.cycles.aie import AieModel
from repro.cycles.branch import (
    BackwardTakenPredictor,
    BimodalPredictor,
    BranchModel,
    GsharePredictor,
    NotTakenPredictor,
)
from repro.cycles.doe import DoeModel
from repro.cycles.memmodel import MainMemory
from repro.programs import load_program
from repro.rtl.pipeline import RtlPipeline
from repro.sim.decoder import decode_instruction
from repro.sim.memory import Memory
from repro.targetgen.optable import build_target

TARGET = build_target(KAHRISMA)
RISC = TARGET.optable(0)


def enc(name, **fields):
    return RISC.by_name[name].encode(fields)


def decoded(name, **fields):
    mem = Memory()
    mem.store4(0x1000, enc(name, **fields))
    return decode_instruction(RISC, mem, 0x1000)


class TestPredictors:
    def test_not_taken_static(self):
        p = NotTakenPredictor()
        assert p.predict(0x1000) is False
        p.update(0x1000, True)
        assert p.predict(0x1000) is False

    def test_btfn_uses_displacement_sign(self):
        p = BackwardTakenPredictor()
        p.set_displacement(-4)
        assert p.predict(0x1000) is True
        p.set_displacement(4)
        assert p.predict(0x1000) is False

    def test_bimodal_learns_and_hysteresis(self):
        p = BimodalPredictor(table_bits=4)
        pc = 0x1000
        for _ in range(3):
            p.update(pc, False)
        assert p.predict(pc) is False
        # One opposite outcome must not flip a saturated counter.
        p.update(pc, True)
        assert p.predict(pc) is False
        p.update(pc, True)
        assert p.predict(pc) is True

    def test_bimodal_aliasing_by_table_size(self):
        p = BimodalPredictor(table_bits=2)
        p.update(0x1000, False)
        p.update(0x1000, False)
        p.update(0x1000, False)
        # 0x1000 and 0x1010 alias in a 4-entry table.
        assert p.predict(0x1000 + (4 << 2)) is False

    def test_gshare_distinguishes_by_history(self):
        p = GsharePredictor(table_bits=8, history_bits=4)
        pc = 0x2000
        # Alternating pattern: bimodal would hover, gshare can learn it
        # once the history register separates the two contexts.
        for _ in range(64):
            p.update(pc, p_taken := (p._history & 1) == 0)
        # Just verify the structure responds to history at all.
        before = p.predict(pc)
        p._history ^= 1
        after = p.predict(pc)
        assert isinstance(before, bool) and isinstance(after, bool)

    def test_reset(self):
        p = BimodalPredictor(table_bits=4)
        p.update(0x1000, False)
        p.update(0x1000, False)
        p.update(0x1000, False)
        p.reset()
        assert p.predict(0x1000) is True  # back to weak-taken


class TestBranchModel:
    def test_conditional_outcome_recomputed(self):
        model = BranchModel(NotTakenPredictor(), penalty=5)
        dec = decoded("beq", rs1=1, rs2=2, imm=4)
        regs = [0] * 32
        regs[1] = regs[2] = 7  # equal -> taken; predictor says not-taken
        assert model.observe_op(dec.single, regs, dec.addr, dec.size)
        assert model.mispredictions == 1
        regs[2] = 8  # not taken -> correct prediction
        assert not model.observe_op(dec.single, regs, dec.addr, dec.size)
        assert model.conditional_branches == 2

    def test_direct_jumps_never_mispredict(self):
        model = BranchModel(NotTakenPredictor())
        for name, fields in (("j", {"imm": 4}), ("jal", {"imm": 4})):
            dec = decoded(name, **fields)
            assert not model.observe_op(dec.single, [0] * 32,
                                        dec.addr, dec.size)
        assert model.mispredictions == 0

    def test_return_address_stack(self):
        model = BranchModel(NotTakenPredictor())
        regs = [0] * 32
        call = decoded("jal", imm=4)
        model.observe_op(call.single, regs, 0x1000, 4)  # pushes 0x1004
        ret = decoded("jr", rs1=31)
        regs[31] = 0x1004
        assert not model.observe_op(ret.single, regs, 0x2000, 4)
        # Mismatching return address (e.g. longjmp-style): mispredict.
        model.observe_op(call.single, regs, 0x1000, 4)
        regs[31] = 0xDEAD
        assert model.observe_op(ret.single, regs, 0x2000, 4)
        assert model.ras_mispredictions == 1

    def test_ras_underflow_counts_as_miss(self):
        model = BranchModel(NotTakenPredictor())
        regs = [0] * 32
        regs[31] = 0x1004
        ret = decoded("jr", rs1=31)
        assert model.observe_op(ret.single, regs, 0x2000, 4)

    def test_rate_and_summary(self):
        model = BranchModel(NotTakenPredictor(), penalty=3)
        dec = decoded("bne", rs1=1, rs2=0, imm=-1)
        regs = [0] * 32
        regs[1] = 1  # taken, predicted not-taken -> miss
        model.observe_op(dec.single, regs, dec.addr, dec.size)
        assert model.misprediction_rate == 1.0
        assert "penalty=3" in model.summary()


class TestModelIntegration:
    def _loop_words(self):
        """10-iteration counted loop: bne mispredicts at least at exit."""
        return [
            enc("addi", rd=5, rs1=0, imm=10),
            enc("addi", rd=6, rs1=0, imm=0),
            enc("add", rd=6, rs1=6, rs2=5),
            enc("addi", rd=5, rs1=5, imm=-1),
            enc("bne", rs1=5, rs2=0, imm=-3),
            enc("halt"),
        ]

    def _run(self, model):
        from repro.sim.interpreter import Interpreter
        from repro.sim.state import ProcessorState, TEXT_BASE
        from repro.sim.syscalls import Syscalls

        state = ProcessorState(KAHRISMA)
        for i, word in enumerate(self._loop_words()):
            state.mem.store4(TEXT_BASE + 4 * i, word)
        state.ip = TEXT_BASE
        state.setup_stack()
        Syscalls().install(state)
        Interpreter(state, cycle_model=model).run(max_instructions=1000)
        return model

    def test_doe_charges_penalty(self):
        perfect = self._run(DoeModel(issue_width=1, memory=MainMemory(0)))
        bm = BranchModel(NotTakenPredictor(), penalty=4)
        with_bm = self._run(
            DoeModel(issue_width=1, memory=MainMemory(0), branch_model=bm)
        )
        assert bm.mispredictions > 0
        assert with_bm.cycles >= perfect.cycles + 4 * bm.mispredictions

    def test_aie_charges_penalty(self):
        perfect = self._run(AieModel(memory=MainMemory(0)))
        bm = BranchModel(NotTakenPredictor(), penalty=4)
        with_bm = self._run(
            AieModel(memory=MainMemory(0), branch_model=bm)
        )
        assert with_bm.cycles == perfect.cycles + 4 * bm.mispredictions

    def test_rtl_charges_penalty(self):
        perfect = self._run(RtlPipeline(1))
        bm = BranchModel(NotTakenPredictor(), penalty=4)
        with_bm = self._run(RtlPipeline(1, branch_model=bm))
        assert bm.mispredictions > 0
        assert with_bm.cycles > perfect.cycles

    def test_better_predictor_fewer_cycles(self, kc, simulate):
        built = kc(load_program("qsort"), filename="qsort.kc")
        results = {}
        for predictor in (NotTakenPredictor(), BimodalPredictor()):
            bm = BranchModel(predictor, penalty=3)
            model = DoeModel(issue_width=1, branch_model=bm)
            simulate(built, cycle_model=model)
            results[predictor.name] = (model.cycles, bm.misprediction_rate)
        nt_cycles, nt_rate = results["static-not-taken"]
        bi_cycles, bi_rate = results["bimodal"]
        assert bi_rate < nt_rate
        assert bi_cycles < nt_cycles

    def test_doe_and_rtl_agree_with_mispredictions(self, kc, simulate):
        built = kc(load_program("qsort"), filename="qsort.kc")
        doe = DoeModel(
            issue_width=1,
            branch_model=BranchModel(BimodalPredictor(), penalty=3),
        )
        simulate(built, cycle_model=doe)
        rtl = RtlPipeline(
            1, branch_model=BranchModel(BimodalPredictor(), penalty=3)
        )
        simulate(built, cycle_model=rtl)
        assert abs(doe.cycles - rtl.cycles) / rtl.cycles < 0.05

    def test_reset_clears_branch_state(self):
        bm = BranchModel(BimodalPredictor(), penalty=2)
        model = DoeModel(issue_width=1, memory=MainMemory(0),
                         branch_model=bm)
        self._run(model)
        model.reset()
        assert bm.mispredictions == 0
        assert model.fetch_floor == 0
