"""Generated ISA reference (docgen)."""

from repro.adl.kahrisma import KAHRISMA
from repro.targetgen.docgen import generate_isa_reference, write_isa_reference


class TestIsaReference:
    def test_all_operations_documented(self):
        text = generate_isa_reference(KAHRISMA)
        for op in KAHRISMA.isas[0].operations:
            assert f"`{op.name}" in text, op.name

    def test_all_isas_listed(self):
        text = generate_isa_reference(KAHRISMA)
        for isa in KAHRISMA.isas:
            assert f"`{isa.name}`" in text

    def test_encoding_diagrams(self):
        text = generate_isa_reference(KAHRISMA)
        assert "[31:24 opcode=0x1 ]".replace(" ]", "]") in text  # add
        assert "[23:19 rd]" in text
        assert "imm±" in text  # signed immediate marker

    def test_register_roles(self):
        text = generate_isa_reference(KAHRISMA)
        assert "| `r30` | sp |" in text
        assert "| `r0` | zero |" in text

    def test_implicit_registers_of_jal(self):
        text = generate_isa_reference(KAHRISMA)
        assert "implicitly writes: r31" in text

    def test_write_to_disk(self, tmp_path):
        path = tmp_path / "isa.md"
        text = write_isa_reference(KAHRISMA, str(path))
        assert path.read_text() == text

    def test_extension_appears_in_docs(self):
        from tests.test_adl_extension import make_mac_op
        from repro.adl.kahrisma import (
            ISA_NAMES, ISSUE_WIDTHS, OPERATIONS, REGISTER_FILE,
        )
        from repro.adl.model import Architecture, Isa

        ops = OPERATIONS + (make_mac_op(),)
        isas = tuple(
            Isa(i, ISA_NAMES[i], w, ops, resources=w)
            for i, w in sorted(ISSUE_WIDTHS.items())
        )
        arch = Architecture("kahrisma-mac", REGISTER_FILE, isas)
        text = generate_isa_reference(arch)
        assert "`mac rd, rs1, rs2, ra`" in text
