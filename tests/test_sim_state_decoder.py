"""Processor state and the instruction decoder."""

import pytest

from repro.adl.kahrisma import ISA_VLIW4, KAHRISMA, REG_RA, REG_SP
from repro.sim.decoder import (
    KIND_CTRL,
    KIND_LOAD,
    KIND_NOP,
    decode_instruction,
)
from repro.sim.errors import DecodeError, SimulationError
from repro.sim.state import EXIT_ADDRESS, ProcessorState, STACK_TOP


class TestProcessorState:
    def test_default_isa_from_adl(self):
        state = ProcessorState(KAHRISMA)
        assert state.isa_id == KAHRISMA.default_isa

    def test_initial_isa_override(self):
        state = ProcessorState(KAHRISMA, isa_id=ISA_VLIW4)
        assert state.isa.name == "vliw4"

    def test_unknown_initial_isa_rejected(self):
        with pytest.raises(SimulationError):
            ProcessorState(KAHRISMA, isa_id=42)

    def test_switch_isa(self):
        state = ProcessorState(KAHRISMA)
        state.switch_isa(ISA_VLIW4)
        assert state.isa_id == ISA_VLIW4
        assert state.isa_switches == 1
        with pytest.raises(SimulationError):
            state.switch_isa(17)

    def test_simop_without_handler_raises(self):
        state = ProcessorState(KAHRISMA)
        with pytest.raises(SimulationError):
            state.simop(0)

    def test_write_reg_masks_and_protects_zero(self):
        state = ProcessorState(KAHRISMA)
        state.write_reg(5, 0x1_0000_0003)
        assert state.read_reg(5) == 3
        state.write_reg(0, 99)
        assert state.read_reg(0) == 0

    def test_setup_stack(self):
        state = ProcessorState(KAHRISMA)
        state.setup_stack()
        assert state.regs[REG_SP] == STACK_TOP
        assert state.regs[REG_RA] == EXIT_ADDRESS
        # The exit address decodes as halt under every issue width.
        halt_word = state.mem.load4(EXIT_ADDRESS)
        assert halt_word >> 24 == 0x3F
        for slot in range(1, 8):
            assert state.mem.load4(EXIT_ADDRESS + 4 * slot) == 0


class TestDecoder:
    def _encode(self, table, name, **fields):
        return table.by_name[name].encode(fields)

    def test_risc_single_op(self, target, risc_table):
        state = ProcessorState(KAHRISMA)
        word = self._encode(risc_table, "addi", rd=1, rs1=0, imm=5)
        state.mem.store4(0x1000, word)
        dec = decode_instruction(risc_table, state.mem, 0x1000)
        assert dec.size == 4
        assert dec.single is not None
        assert dec.single.name == "addi"
        assert dec.n_slots == 1 and dec.n_exec == 1

    def test_vliw_bundle_with_nops(self, target, risc_table):
        state = ProcessorState(KAHRISMA)
        vliw4 = target.optable(ISA_VLIW4)
        words = [
            self._encode(risc_table, "add", rd=1, rs1=2, rs2=3),
            self._encode(risc_table, "lw", rd=4, rs1=30, imm=0),
            0,  # nop
            0,  # nop
        ]
        for i, w in enumerate(words):
            state.mem.store4(0x2000 + 4 * i, w)
        dec = decode_instruction(vliw4, state.mem, 0x2000)
        assert dec.size == 16
        assert dec.n_slots == 4
        assert dec.n_exec == 2  # nops stripped from execution
        assert dec.n_mem == 1
        assert [op.kind_code for op in dec.ops] == [
            0, KIND_LOAD, KIND_NOP, KIND_NOP,
        ]
        assert dec.ops[1].mem_base == 30 and dec.ops[1].mem_imm == 0

    def test_dsts_filter_zero_register(self, risc_table):
        state = ProcessorState(KAHRISMA)
        word = self._encode(risc_table, "add", rd=0, rs1=2, rs2=3)
        state.mem.store4(0x1000, word)
        dec = decode_instruction(risc_table, state.mem, 0x1000)
        assert dec.single.dsts == ()

    def test_jal_implicit_write_in_dsts(self, risc_table):
        state = ProcessorState(KAHRISMA)
        word = self._encode(risc_table, "jal", imm=2)
        state.mem.store4(0x1000, word)
        dec = decode_instruction(risc_table, state.mem, 0x1000)
        assert 31 in dec.single.dsts
        assert dec.single.kind_code == KIND_CTRL

    def test_undefined_word_raises(self, risc_table):
        state = ProcessorState(KAHRISMA)
        state.mem.store4(0x1000, 0xEE000000)
        with pytest.raises(DecodeError):
            decode_instruction(risc_table, state.mem, 0x1000)

    def test_two_control_ops_in_bundle_rejected(self, target, risc_table):
        state = ProcessorState(KAHRISMA)
        vliw4 = target.optable(ISA_VLIW4)
        j_word = self._encode(risc_table, "j", imm=0)
        for i in range(2):
            state.mem.store4(0x3000 + 4 * i, j_word)
        state.mem.store4(0x3008, 0)
        state.mem.store4(0x300C, 0)
        with pytest.raises(DecodeError):
            decode_instruction(vliw4, state.mem, 0x3000)

    def test_prediction_fields_start_empty(self, risc_table):
        state = ProcessorState(KAHRISMA)
        state.mem.store4(0x1000, self._encode(risc_table, "nop"))
        dec = decode_instruction(risc_table, state.mem, 0x1000)
        assert dec.pred_ip == -1
        assert dec.pred_dec is None
