"""Cycle-accurate RTL reference pipeline tests."""

import pytest

from repro.adl.kahrisma import ISA_VLIW2, ISA_VLIW4, KAHRISMA
from repro.cycles.doe import DoeModel
from repro.cycles.memmodel import HierarchyConfig
from repro.rtl.pipeline import RtlConfig, RtlPipeline
from repro.sim.decoder import decode_instruction
from repro.sim.memory import Memory
from repro.targetgen.optable import build_target

TARGET = build_target(KAHRISMA)
RISC = TARGET.optable(0)


def enc(name, **fields):
    return RISC.by_name[name].encode(fields)


def stream(words, isa_id=0):
    mem = Memory()
    for i, word in enumerate(words):
        mem.store4(0x1000 + 4 * i, word)
    table = TARGET.optable(isa_id)
    decs = []
    addr = 0x1000
    end = 0x1000 + 4 * len(words)
    while addr < end:
        dec = decode_instruction(table, mem, addr)
        decs.append(dec)
        addr += dec.size
    return decs


def feed(model, decs, regs=None):
    regs = regs if regs is not None else [0] * 32
    for dec in decs:
        model.observe(dec, regs)
    return model


class TestBasicTiming:
    def test_single_alu_op(self):
        rtl = feed(RtlPipeline(1), stream([enc("addi", rd=1, rs1=0, imm=1)]))
        assert rtl.cycles == 1
        assert rtl.ops == 1

    def test_dependent_chain(self):
        rtl = feed(RtlPipeline(1), stream([
            enc("addi", rd=1, rs1=0, imm=1),
            enc("add", rd=2, rs1=1, rs2=0),
            enc("add", rd=3, rs1=2, rs2=0),
        ]))
        assert rtl.cycles == 3

    def test_deterministic(self):
        words = [enc("addi", rd=i % 8 + 1, rs1=0, imm=i) for i in range(20)]
        a = feed(RtlPipeline(1), stream(words)).cycles
        b = feed(RtlPipeline(1), stream(words)).cycles
        assert a == b

    def test_observe_invalidates_cached_cycles(self):
        rtl = RtlPipeline(1)
        decs = stream([enc("addi", rd=1, rs1=0, imm=1)] * 3)
        rtl.observe(decs[0], [0] * 32)
        first = rtl.cycles
        rtl.observe(decs[1], [0] * 32)
        assert rtl.cycles > first

    def test_reset(self):
        rtl = feed(RtlPipeline(1), stream([enc("addi", rd=1, rs1=0, imm=1)]))
        rtl.reset()
        assert rtl.cycles == 0 and rtl.ops == 0


class TestResourceConstraints:
    def test_shared_multiplier_between_slot_pairs(self):
        # Two muls in adjacent slots of one bundle contend for the
        # shared multiplier; the heuristic DOE model ignores this.
        words = [
            enc("mul", rd=1, rs1=5, rs2=6),
            enc("mul", rd=2, rs1=7, rs2=8),
        ]
        decs = stream(words, isa_id=ISA_VLIW2)
        rtl = feed(RtlPipeline(2), decs)
        doe = feed(DoeModel(issue_width=2), decs)
        assert rtl.cycles >= doe.cycles

    def test_mul_sharing_disabled(self):
        words = [
            enc("mul", rd=1, rs1=5, rs2=6),
            enc("mul", rd=2, rs1=7, rs2=8),
        ]
        decs = stream(words, isa_id=ISA_VLIW2)
        shared = feed(RtlPipeline(2), decs).cycles
        private = feed(
            RtlPipeline(2, RtlConfig(share_mul_per_pair=False)), decs
        ).cycles
        assert private <= shared

    def test_single_divider_serialises(self):
        words = [
            enc("div", rd=1, rs1=5, rs2=6),
            enc("div", rd=2, rs1=7, rs2=8),
        ]
        decs = stream(words, isa_id=ISA_VLIW2)
        one = feed(RtlPipeline(2, RtlConfig(div_units=1)), decs).cycles
        two = feed(RtlPipeline(2, RtlConfig(div_units=2)), decs).cycles
        assert two < one

    def test_memory_port_limit(self):
        regs = [0] * 32
        regs[10] = 0x100
        words = [
            enc("lw", rd=1, rs1=10, imm=0),
            enc("lw", rd=2, rs1=10, imm=4),
        ]
        decs = stream(words, isa_id=ISA_VLIW2)
        one_port = feed(RtlPipeline(2, RtlConfig(mem_ports=1)), decs, regs)
        two_ports = feed(RtlPipeline(2, RtlConfig(mem_ports=2)), decs, regs)
        assert two_ports.cycles <= one_port.cycles


class TestDrift:
    def test_drift_limit_slows_execution(self):
        # A long multiply chain in slot 0 with independent work in
        # slot 1: unbounded drift lets slot 1 run far ahead.
        words = []
        for i in range(12):
            words.append(enc("mul", rd=1, rs1=1, rs2=2))   # slot 0 chain
            words.append(enc("addi", rd=3 + (i % 4), rs1=0, imm=i))
        decs = stream(words, isa_id=ISA_VLIW2)
        tight = feed(RtlPipeline(2, RtlConfig(drift_limit=1)), decs).cycles
        loose = feed(RtlPipeline(2, RtlConfig(drift_limit=16)), decs).cycles
        assert loose <= tight

    def test_agrees_with_doe_on_simple_streams(self):
        words = []
        for i in range(16):
            words.append(enc("addi", rd=1 + (i % 8), rs1=0, imm=i))
        decs = stream(words)
        rtl = feed(RtlPipeline(1), decs).cycles
        doe = feed(DoeModel(issue_width=1), decs).cycles
        assert abs(rtl - doe) <= max(2, 0.1 * doe)


class TestEndToEndAccuracy:
    @pytest.mark.parametrize("isa,width", [
        ("risc", 1), ("vliw2", 2), ("vliw4", 4), ("vliw8", 8),
    ])
    def test_doe_error_within_bounds_on_dct(self, kc, simulate, isa, width):
        """The Table II property: DOE approximates RTL within a few %."""
        from repro.programs import load_program

        built = kc(load_program("dct4x4"), isa=isa, filename="dct4x4.kc")
        doe = DoeModel(issue_width=width)
        simulate(built, cycle_model=doe)
        rtl = RtlPipeline(issue_width=width)
        simulate(built, cycle_model=rtl)
        error = abs(doe.cycles - rtl.cycles) / rtl.cycles
        assert error < 0.08, (doe.cycles, rtl.cycles)
