"""Extending the architecture purely through the ADL (retargetability).

The paper's central framework claim: all tools are generated from the
architecture description, so an ISA extension is a description change.
These tests derive an architecture with an extra MAC operation and push
it through TargetGen, the assembler, the simulator, the disassembler
and the cycle models without modifying any of them.
"""

import pytest

from repro.adl.kahrisma import (
    DELAY_MUL,
    ISA_NAMES,
    ISSUE_WIDTHS,
    OPERATIONS,
    REGISTER_FILE,
)
from repro.adl.model import Architecture, Field, Isa, Operation
from repro.adl.validate import check_architecture
from repro.binutils.assembler import Assembler
from repro.binutils.linker import link
from repro.binutils.loader import load_executable
from repro.cycles.doe import DoeModel
from repro.sim.decoder import decode_instruction
from repro.sim.disasm import format_op
from repro.sim.interpreter import Interpreter
from repro.targetgen.codegen import (
    generate_simulator_module,
    load_generated_module,
)
from repro.targetgen.optable import TargetDescription


def make_mac_op(opcode=0x0F):
    return Operation(
        name="mac",
        size=4,
        fields=(
            Field("opcode", 31, 24, const=opcode, role="opcode"),
            Field("rd", 23, 19, role="reg_dst"),
            Field("rs1", 18, 14, role="reg_src"),
            Field("rs2", 13, 9, role="reg_src"),
            Field("ra", 8, 4, role="reg_src"),
            Field("pad", 3, 0, const=0, role="pad"),
        ),
        behavior="W(rd, R(ra) + s32(R(rs1)) * s32(R(rs2)))",
        src_fields=("rs1", "rs2", "ra"),
        dst_fields=("rd",),
        kind="alu",
        fu_class="mul",
        delay=DELAY_MUL,
        asm_operands=("rd", "rs1", "rs2", "ra"),
    )


@pytest.fixture(scope="module")
def mac_arch():
    ops = OPERATIONS + (make_mac_op(),)
    isas = tuple(
        Isa(ident=i, name=ISA_NAMES[i], issue_width=w, operations=ops,
            resources=w)
        for i, w in sorted(ISSUE_WIDTHS.items())
    )
    arch = Architecture("kahrisma-mac", REGISTER_FILE, isas, default_isa=0)
    check_architecture(arch)
    return arch


@pytest.fixture(scope="module")
def mac_target(mac_arch):
    return TargetDescription(mac_arch)


class TestTargetGenPicksUpExtension:
    def test_operation_table_contains_mac(self, mac_target):
        entry = mac_target.optable(0).by_name["mac"]
        assert entry.op.delay == DELAY_MUL
        assert callable(entry.sim_fn)

    def test_mac_semantics(self, mac_target):
        entry = mac_target.optable(0).by_name["mac"]
        word = entry.encode({"rd": 5, "rs1": 6, "rs2": 7, "ra": 8})
        vals = entry.decode(word)

        class S:
            regs = [0] * 32

        s = S()
        s.regs[6] = 3
        s.regs[7] = 4
        s.regs[8] = 100
        regwr, memwr = [], []
        entry.sim_fn(s, vals, 0, 4, regwr, memwr)
        assert regwr == [(5, 112)]

    def test_detection_of_new_opcode(self, mac_target):
        entry = mac_target.optable(0).by_name["mac"]
        word = entry.encode({"rd": 1, "rs1": 2, "rs2": 3, "ra": 4})
        detected = mac_target.optable(0).detect(word)
        assert detected is not None and detected.op.name == "mac"

    def test_emitted_module_contains_mac(self, mac_arch):
        ns = load_generated_module(generate_simulator_module(mac_arch))
        assert "mac" in ns.OPERATION_TABLES[0]


class TestToolchainFlow:
    def test_assemble_run_disassemble(self, mac_arch, mac_target):
        asm = (
            ".global $risc$main\n"
            "$risc$main:\n"
            "    li r6, 3\n"
            "    li r7, 4\n"
            "    li r8, 100\n"
            "    mac r5, r6, r7, r8\n"
            "    halt\n"
        )
        obj = Assembler(mac_arch).assemble(asm, "mac.s")
        elf, _ = link([obj], mac_arch, entry_symbol="$risc$main",
                      entry_isa=0, include_libc=False)
        program = load_executable(elf, mac_arch)
        model = DoeModel(issue_width=1)
        Interpreter(program.state, cycle_model=model).run(
            max_instructions=100
        )
        assert program.state.regs[5] == 112
        assert model.ops == 5

        # Disassembler renders the 4-register operand list.
        dec = decode_instruction(
            mac_target.optable(0), program.state.mem, elf.entry + 12
        )
        assert format_op(dec.single) == "mac r5, r6, r7, r8"

    def test_mac_in_vliw_bundle(self, mac_arch):
        asm = (
            ".isa vliw2\n"
            ".global $vliw2$main\n"
            "$vliw2$main:\n"
            "    { addi r6, r0, 5 ; addi r7, r0, 6 }\n"
            "    { addi r8, r0, 1000 }\n"
            "    { mac r5, r6, r7, r8 ; addi r9, r0, 1 }\n"
            "    { halt }\n"
        )
        obj = Assembler(mac_arch).assemble(asm, "macv.s")
        elf, _ = link([obj], mac_arch, entry_symbol="$vliw2$main",
                      entry_isa=1, include_libc=False)
        program = load_executable(elf, mac_arch)
        Interpreter(program.state).run(max_instructions=100)
        assert program.state.regs[5] == 1030
        assert program.state.regs[9] == 1

    def test_base_architecture_rejects_mac(self):
        from repro.adl.kahrisma import KAHRISMA
        from repro.binutils.assembler import AsmError

        with pytest.raises(AsmError):
            Assembler(KAHRISMA).assemble("mac r1, r2, r3, r4\n", "m.s")

    def test_opcode_collision_caught_by_validation(self):
        from repro.adl.model import AdlError

        colliding = make_mac_op(opcode=0x01)  # clashes with add
        ops = OPERATIONS + (colliding,)
        isas = (Isa(0, "risc", 1, ops),)
        arch = Architecture("bad", REGISTER_FILE, isas)
        with pytest.raises(AdlError):
            check_architecture(arch)
