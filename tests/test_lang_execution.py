"""End-to-end compiler semantics: simulate KC and compare with Python.

Each snippet is compiled for RISC *and* VLIW4 (the list-scheduled path)
and its printed output compared against the expected value computed in
Python with matching 32-bit semantics.  This is the compiler's primary
correctness oracle.
"""

import pytest
from hypothesis import given, settings, strategies as st

MASK32 = 0xFFFFFFFF


def s32(x):
    x &= MASK32
    return x - (1 << 32) if x & 0x80000000 else x


def run_main(kc, simulate, source, isa="risc"):
    built = kc(source, isa=isa)
    program, _stats = simulate(built)
    return program.output


CASES = [
    # arithmetic
    ("return 7 + 3;", 10),
    ("return 7 - 11;", -4),
    ("return 6 * 7;", 42),
    ("return -6 * 7;", -42),
    ("return 45 / 7;", 6),
    ("return -45 / 7;", -6),          # trunc toward zero
    ("return 45 % 7;", 3),
    ("return -45 % 7;", -3),          # sign follows dividend
    ("int z = 0; return 5 / z;", -1),  # hardware div-by-zero
    ("int z = 0; return 5 % z;", 5),
    # bitwise / shifts
    ("return 0xF0 & 0x3C;", 0x30),
    ("return 0xF0 | 0x0F;", 0xFF),
    ("return 0xFF ^ 0x0F;", 0xF0),
    ("return ~0;", -1),
    ("return 1 << 10;", 1024),
    ("return -16 >> 2;", -4),         # arithmetic shift for signed
    ("unsigned int u = 0x80000000; return u >> 28;", 8),  # logical
    # comparisons
    ("return 3 < 4;", 1),
    ("return 4 <= 4;", 1),
    ("return 5 > 7;", 0),
    ("return -1 < 1;", 1),            # signed compare
    ("unsigned int a = 0xFFFFFFFF; unsigned int b = 1; return a < b;", 0),
    ("return 3 == 3;", 1),
    ("return 3 != 3;", 0),
    # logical operators and short-circuit
    ("return 1 && 2;", 1),
    ("return 0 || 3;", 1),
    ("return !5;", 0),
    ("return !0;", 1),
    ("int x = 0; int z = 0; int r = z && (x = 1); return x * 10 + r;", 0),
    ("int x = 0; int o = 1; int r = o || (x = 1); return x * 10 + r;", 1),
    # ternary, inc/dec, compound assignment
    ("return 5 > 3 ? 11 : 22;", 11),
    ("int x = 5; return x++ * 10 + x;", 56),
    ("int x = 5; return ++x * 10 + x;", 66),
    ("int x = 5; return x-- * 10 + x;", 54),
    ("int x = 7; x += 3; x *= 2; x -= 5; x /= 3; return x;", 5),
    ("int x = 0xFF; x &= 0x0F; x |= 0x30; x ^= 0x01; return x;", 0x3E),
    ("int x = 3; x <<= 4; x >>= 2; return x;", 12),
    # control flow
    ("int s = 0; for (int i = 0; i < 10; i++) s += i; return s;", 45),
    ("int s = 0; int i = 10; while (i > 0) { s += i; i--; } return s;", 55),
    ("int s = 0; int i = 0; do { s += ++i; } while (i < 4); return s;", 10),
    ("int s = 0; for (int i = 0; i < 10; i++) { if (i == 5) break; s += i; }"
     " return s;", 10),
    ("int s = 0; for (int i = 0; i < 6; i++) { if (i % 2) continue; s += i; }"
     " return s;", 6),
    ("int s = 0; for (int i = 0; i < 3; i++) for (int j = 0; j < 3; j++)"
     " s += i * j; return s;", 9),
    # wrap-around
    ("int x = 0x7FFFFFFF; return x + 1;", -2147483648),
    ("unsigned int x = 0xFFFFFFFF; x = x + 2; return x;", 1),
]


@pytest.mark.parametrize("body,expected", CASES,
                         ids=[c[0][:40] for c in CASES])
@pytest.mark.parametrize("isa", ["risc", "vliw4"])
def test_expression_semantics(kc, simulate, body, expected, isa):
    source = f"int main() {{ int result; {{ {body} }} return 0; }}"
    # Wrap so `return` returns from main; print via exit-code channel:
    source = (
        "int compute() { " + body + " }\n"
        "int main() { print_int(compute()); return 0; }\n"
    )
    out = run_main(kc, simulate, source, isa=isa)
    assert out.strip() == str(expected), body


class TestArraysAndPointers:
    SOURCE = """
    int g[8] = { 1, 2, 3, 4, 5, 6, 7, 8 };
    char bytes[4];

    int sum(int *p, int n) {
        int s = 0;
        for (int i = 0; i < n; i++) s += p[i];
        return s;
    }

    int main() {
        print_int(sum(g, 8));
        putchar(' ');
        int local[4];
        for (int i = 0; i < 4; i++) local[i] = g[i] * 10;
        print_int(sum(local, 4));
        putchar(' ');
        int *p = g + 2;
        print_int(*p);
        putchar(' ');
        print_int(p[1]);
        putchar(' ');
        print_int(p - g);
        putchar(' ');
        bytes[0] = 200;
        bytes[1] = bytes[0] + 100;   // char wraps at 256
        print_int(bytes[1]);
        putchar(' ');
        print_int(sum(&g[4], 2));
        putchar('\\n');
        return 0;
    }
    """

    @pytest.mark.parametrize("isa", ["risc", "vliw2", "vliw4", "vliw8"])
    def test_pointers(self, kc, simulate, isa):
        out = run_main(kc, simulate, self.SOURCE, isa=isa)
        assert out == "36 100 3 4 2 44 11\n"


class TestRecursionAndGlobals:
    def test_fibonacci(self, kc, simulate):
        source = """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { print_int(fib(15)); return 0; }
        """
        assert run_main(kc, simulate, source).strip() == "610"

    def test_mutual_recursion(self, kc, simulate):
        source = """
        int is_odd(int n);
        """
        # KC has no prototypes; use a different shape: ackermann-lite.
        source = """
        int ack(int m, int n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        int main() { print_int(ack(2, 3)); return 0; }
        """
        assert run_main(kc, simulate, source).strip() == "9"

    def test_global_state_across_calls(self, kc, simulate):
        source = """
        int counter = 100;
        void bump(int by) { counter += by; }
        int main() {
            bump(1); bump(10); bump(100);
            print_int(counter);
            return 0;
        }
        """
        assert run_main(kc, simulate, source).strip() == "211"

    def test_exit_code_from_main(self, kc, simulate):
        built = kc("int main() { return 42; }")
        program, _stats = simulate(built)
        # main's return value lands in r2 (no exit() call).
        assert program.state.regs[2] == 42

    def test_deep_recursion_stack(self, kc, simulate):
        source = """
        int depth(int n) {
            int local[4];
            local[0] = n;
            if (n == 0) return 0;
            return local[0] - n + 1 + depth(n - 1);
        }
        int main() { print_int(depth(500)); return 0; }
        """
        assert run_main(kc, simulate, source).strip() == "500"


class TestLibcFromKc:
    def test_string_and_io(self, kc, simulate):
        source = """
        int main() {
            puts("hello");
            print_hex(255);
            putchar('\\n');
            print_uint(3000000000);
            putchar('\\n');
            return 0;
        }
        """
        out = run_main(kc, simulate, source)
        assert out == "hello\n000000ff\n3000000000\n"

    def test_malloc_and_memset(self, kc, simulate):
        source = """
        int main() {
            int *buf = malloc(64);
            memset(buf, 0, 64);
            for (int i = 0; i < 16; i++) buf[i] = i;
            int *copy = malloc(64);
            memcpy(copy, buf, 64);
            int s = 0;
            for (int i = 0; i < 16; i++) s += copy[i];
            print_int(s);
            return 0;
        }
        """
        assert run_main(kc, simulate, source).strip() == "120"

    def test_rand_reproducible(self, kc, simulate):
        source = """
        int main() {
            srand(7);
            int a = rand();
            srand(7);
            int b = rand();
            print_int(a == b);
            return 0;
        }
        """
        assert run_main(kc, simulate, source).strip() == "1"


@st.composite
def arith_expr(draw, depth=0):
    """Random KC integer expression over variables a, b, c."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return str(draw(st.integers(-100, 100)))
        return draw(st.sampled_from(["a", "b", "c"]))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    left = draw(arith_expr(depth=depth + 1))
    right = draw(arith_expr(depth=depth + 1))
    return f"({left} {op} {right})"


class TestRandomExpressions:
    @given(
        expr=arith_expr(),
        a=st.integers(-1000, 1000),
        b=st.integers(-1000, 1000),
        c=st.integers(-1000, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_python_semantics(self, kc, simulate, expr, a, b, c):
        source = (
            f"int f(int a, int b, int c) {{ return {expr}; }}\n"
            f"int main() {{ print_int(f({a}, {b}, {c})); return 0; }}\n"
        )
        out = run_main(kc, simulate, source)
        expected = s32(eval(expr, {}, {"a": a, "b": b, "c": c}))
        assert out.strip() == str(expected), expr
