"""Persistent superblock plan cache (``repro.sim.plancache``).

Unit tests for the cache file contract (keying, digests, atomic
merge-writes) plus end-to-end warm-start behaviour: a second run of
the same executable must reload every hot-plan translation instead of
recompiling it, with bitwise-identical simulation results.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cycles.doe import DoeModel
from repro.framework.pipeline import (
    build_benchmark,
    open_plan_cache,
    run,
)
from repro.sim.plancache import FORMAT_VERSION, PlanCache, default_cache_dir

_BUILDS = {}


def built_benchmark(name):
    if name not in _BUILDS:
        _BUILDS[name] = build_benchmark(name)
    return _BUILDS[name]


def fresh_cache(tmp_path, built):
    """A new PlanCache object over the same on-disk file."""
    return open_plan_cache(built, directory=str(tmp_path))


SRC = "def _superblock_body(state, inv, m):\n    return 7\n"
CODE = compile(SRC, "<test>", "exec")


class TestCacheFile:
    def test_open_keys_on_program_and_arch(self, tmp_path):
        a = PlanCache.open(elf_digest="aa", arch_digest="xx",
                           directory=str(tmp_path))
        b = PlanCache.open(elf_digest="bb", arch_digest="xx",
                           directory=str(tmp_path))
        c = PlanCache.open(elf_digest="aa", arch_digest="yy",
                           directory=str(tmp_path))
        assert len({a.path, b.path, c.path}) == 3

    def test_roundtrip_through_new_object(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.record(0, 0x1000, (0x1000, 0x1010), "d1", "DOE:test",
                     {"fused_full": (SRC, CODE)})
        cache.save()
        warm = PlanCache(cache.path)
        fns = warm.lookup(0, 0x1000, "DOE:test", "d1")
        assert fns is not None
        assert fns["fused_full"](None, None, None) == 7

    def test_digest_mismatch_misses(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.record(0, 0x1000, (0x1000, 0x1010), "d1", "",
                     {"full": (SRC, CODE)})
        assert cache.lookup(0, 0x1000, "", "d2") is None
        assert cache.lookup(0, 0x1000, "", "d1") is not None

    def test_namespace_isolation(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.record(0, 0x1000, (0x1000, 0x1010), "d1", "AIE:mem=x",
                     {"fused_body": (SRC, CODE)})
        assert cache.lookup(0, 0x1000, "DOE:mem=x", "d1") is None

    def test_empty_variants_hit_without_retry(self, tmp_path):
        """A recorded failed translation still answers warm lookups."""
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.record(0, 0x1000, (0x1000, 0x1010), "d1", "DOE:test", {})
        cache.save()
        warm = PlanCache(cache.path)
        assert warm.lookup(0, 0x1000, "DOE:test", "d1") == {}

    def test_version_mismatch_ignored(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.record(0, 0x1000, (0x1000, 0x1010), "d1", "",
                     {"full": (SRC, CODE)})
        cache.save()
        with open(cache.path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        data["version"] = FORMAT_VERSION + 1
        with open(cache.path, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        assert len(PlanCache(cache.path)) == 0

    def test_corrupt_file_ignored(self, tmp_path):
        path = str(tmp_path / "plans-bad.json")
        with open(path, "w") as fh:
            fh.write("{not json")
        cache = PlanCache(path)
        assert len(cache) == 0
        cache.record(0, 0x1000, (0x1000, 0x1010), "d1", "", {})
        cache.save()  # must overwrite the corrupt file, not crash
        assert len(PlanCache(path)) == 1

    def test_save_merges_concurrent_writers(self, tmp_path):
        first = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        second = PlanCache(first.path)
        first.record(0, 0x1000, (0x1000, 0x1010), "d1", "A",
                     {"full": (SRC, CODE)})
        second.record(0, 0x2000, (0x2000, 0x2010), "d2", "B",
                      {"full": (SRC, CODE)})
        first.save()
        second.save()
        merged = PlanCache(first.path)
        assert merged.lookup(0, 0x1000, "A", "d1") is not None
        assert merged.lookup(0, 0x2000, "B", "d2") is not None

    def test_save_merges_namespaces_of_one_entry(self, tmp_path):
        """AIE and DOE runs of one program share entries in one file."""
        first = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        second = PlanCache(first.path)
        first.record(0, 0x1000, (0x1000, 0x1010), "d1", "A",
                     {"fused_full": (SRC, CODE)})
        second.record(0, 0x1000, (0x1000, 0x1010), "d1", "B",
                      {"fused_full": (SRC, CODE)})
        first.save()
        second.save()
        merged = PlanCache(first.path)
        assert merged.lookup(0, 0x1000, "A", "d1") is not None
        assert merged.lookup(0, 0x1000, "B", "d1") is not None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.record(0, 0x1000, (0x1000, 0x1010), "d1", "", {})
        cache.save()
        names = os.listdir(str(tmp_path))
        assert [n for n in names if n.endswith(".tmp")] == []

    def test_save_is_noop_when_clean(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.save()
        assert not os.path.exists(cache.path)

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("KAHRISMA_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == str(tmp_path)


class TestEntryLimit:
    def _record_n(self, cache, n):
        for i in range(n):
            cache.record(0, 0x1000 + 16 * i,
                         (0x1000 + 16 * i, 0x1010 + 16 * i),
                         f"d{i}", "", {"full": (SRC, CODE)})

    def test_lru_eviction_at_save(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path), limit=3)
        self._record_n(cache, 5)
        # Touch the two oldest so the *middle* entries become stale.
        assert cache.lookup(0, 0x1000, "", "d0") is not None
        assert cache.lookup(0, 0x1010, "", "d1") is not None
        cache.save()
        assert cache.evictions == 2
        warm = PlanCache(cache.path)
        assert len(warm) == 3
        assert warm.lookup(0, 0x1000, "", "d0") is not None
        assert warm.lookup(0, 0x1010, "", "d1") is not None
        assert warm.lookup(0, 0x1020, "", "d2") is None

    def test_no_limit_keeps_everything(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        self._record_n(cache, 5)
        cache.save()
        assert cache.evictions == 0
        assert len(PlanCache(cache.path)) == 5

    def test_under_limit_no_eviction(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path), limit=8)
        self._record_n(cache, 5)
        cache.save()
        assert cache.evictions == 0
        assert len(PlanCache(cache.path)) == 5

    def test_limit_via_open_plan_cache(self, tmp_path):
        built = built_benchmark("dct4x4")
        cache = open_plan_cache(built, directory=str(tmp_path), limit=7)
        assert cache.limit == 7

    def test_eviction_counter_reaches_telemetry(self, tmp_path):
        from repro.telemetry.collect import collect_interpreter_metrics

        built = built_benchmark("dct4x4")
        cache = open_plan_cache(built, directory=str(tmp_path), limit=4)
        result = run(built, engine="superblock", plan_cache=cache)
        metrics = collect_interpreter_metrics(result.interpreter)
        assert metrics["sim.plancache.evictions"] == cache.evictions
        assert metrics["sim.plancache.evictions"] > 0
        assert metrics["sim.plancache.entries"] == len(cache)


def _hammer_writer(path, writer_id, rounds):
    """One writer process: record+save ``rounds`` distinct entries."""
    cache = PlanCache(path)
    for i in range(rounds):
        addr = 0x1000 + 0x100 * (writer_id * rounds + i)
        cache.record(0, addr, (addr, addr + 16),
                     f"w{writer_id}-{i}", "", {"full": (SRC, CODE)})
        cache.save()
    return cache.lock_timeouts


class TestConcurrentWriters:
    def test_eight_process_hammer_loses_no_entries(self, tmp_path):
        """8 worker processes × 25 save cycles on one cache file.

        This is the serve deployment shape: every worker of a
        ``kahrisma serve`` pool shares one plan-cache directory and
        saves after each job.  The flock-guarded read-merge-write in
        :meth:`PlanCache.save` must not lose any concurrent entry.
        """
        import multiprocessing

        ctx = (multiprocessing.get_context("fork")
               if "fork" in multiprocessing.get_all_start_methods()
               else multiprocessing.get_context("spawn"))
        writers, rounds = 8, 25
        path = str(tmp_path / "plans-hammer.json")
        with ctx.Pool(writers) as pool:
            timeouts = pool.starmap(
                _hammer_writer,
                [(path, w, rounds) for w in range(writers)],
            )
        assert sum(timeouts) == 0  # nobody gave up on the lock
        merged = PlanCache(path)
        assert len(merged) == writers * rounds
        for w in range(writers):
            for i in range(rounds):
                addr = 0x1000 + 0x100 * (w * rounds + i)
                assert merged.lookup(0, addr, "", f"w{w}-{i}") is not None

    def test_lock_wait_counters_reach_telemetry(self, tmp_path):
        from repro.telemetry.collect import collect_interpreter_metrics

        built = built_benchmark("dct4x4")
        cache = fresh_cache(tmp_path, built)
        result = run(built, engine="superblock", plan_cache=cache)
        metrics = collect_interpreter_metrics(result.interpreter)
        assert metrics["sim.plancache.lock_waits"] == cache.lock_waits
        assert metrics["sim.plancache.lock_timeouts"] == cache.lock_timeouts
        assert metrics["sim.plancache.lock_timeouts"] == 0


class TestLockCleanup:
    """``save()`` must not litter ``*.lock`` sidecars in the cache dir.

    The holder unlinks the sidecar while still holding the flock;
    waiters verify the inode they locked is still the one on disk and
    reopen otherwise, so cleanup cannot hand two writers the lock.
    """

    def test_save_leaves_no_lock_sidecar(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.record(0, 0x1000, (0x1000, 0x1010), "d1", "",
                     {"full": (SRC, CODE)})
        cache.save()
        names = os.listdir(str(tmp_path))
        assert [n for n in names if n.endswith(".lock")] == [], names

    def test_reacquire_after_cleanup(self, tmp_path):
        """Fresh saves keep working after the sidecar was removed."""
        path = str(tmp_path / "plans.json")
        for i in range(3):
            cache = PlanCache(path)
            addr = 0x1000 + 0x100 * i
            cache.record(0, addr, (addr, addr + 16), f"d{i}", "",
                         {"full": (SRC, CODE)})
            cache.save()
            assert not os.path.exists(path + ".lock")
        merged = PlanCache(path)
        assert len(merged) == 3

    def test_hammer_leaves_no_lock_files(self, tmp_path):
        """Contended writers clean up too (the orphaned-inode path)."""
        import multiprocessing

        ctx = (multiprocessing.get_context("fork")
               if "fork" in multiprocessing.get_all_start_methods()
               else multiprocessing.get_context("spawn"))
        writers, rounds = 4, 10
        path = str(tmp_path / "plans-cleanup.json")
        with ctx.Pool(writers) as pool:
            timeouts = pool.starmap(
                _hammer_writer,
                [(path, w, rounds) for w in range(writers)],
            )
        assert sum(timeouts) == 0
        merged = PlanCache(path)
        assert len(merged) == writers * rounds  # contention lost nothing
        names = os.listdir(str(tmp_path))
        assert [n for n in names if n.endswith(".lock")] == [], names


class TestModuleSideFiles:
    PAYLOAD = {"format": 1, "namespace": "", "code": b"\x00\x01",
               "entries": []}

    def test_roundtrip(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        assert cache.lookup_module("") is None
        assert cache.module_stamp("") is None
        cache.record_module("", self.PAYLOAD)
        assert cache.lookup_module("") == self.PAYLOAD
        assert cache.module_stamp("") is not None
        # A fresh object over the same path sees the module without
        # any save() — side files are written immediately.
        assert PlanCache(cache.path).lookup_module("") == self.PAYLOAD

    def test_namespaces_get_separate_files(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.record_module("", self.PAYLOAD)
        cache.record_module("DOE:w1", dict(self.PAYLOAD, namespace="DOE:w1"))
        assert cache.lookup_module("")["namespace"] == ""
        assert cache.lookup_module("DOE:w1")["namespace"] == "DOE:w1"
        # Lock sidecars (.bin.lock) ride along; count the modules only.
        mods = [n for n in os.listdir(str(tmp_path))
                if ".mod-" in n and n.endswith(".bin")]
        assert len(mods) == 2

    def test_stamp_changes_on_rewrite(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.record_module("", self.PAYLOAD)
        before = cache.module_stamp("")
        cache.record_module("", dict(self.PAYLOAD, code=b"\x00\x01\x02"))
        assert cache.module_stamp("") != before

    def test_corrupt_module_file_is_a_miss(self, tmp_path):
        cache = PlanCache.open(elf_digest="aa", arch_digest="xx",
                               directory=str(tmp_path))
        cache.record_module("", self.PAYLOAD)
        with open(cache._module_path(""), "wb") as fh:
            fh.write(b"garbage")
        assert cache.lookup_module("") is None


class TestWarmRuns:
    def test_warm_run_skips_translation(self, tmp_path):
        built = built_benchmark("dct4x4")
        cold_model = DoeModel(issue_width=built.issue_width)
        cold = run(built, engine="superblock", cycle_model=cold_model,
                   plan_cache=fresh_cache(tmp_path, built))
        cold_engine = cold.interpreter.superblock
        assert cold_engine.translations > 0
        assert os.path.exists(cold.interpreter.plan_cache.path)

        warm_model = DoeModel(issue_width=built.issue_width)
        warm = run(built, engine="superblock", cycle_model=warm_model,
                   plan_cache=fresh_cache(tmp_path, built))
        warm_engine = warm.interpreter.superblock
        assert warm_engine.translations == 0
        assert warm_engine.plan_cache_hits > 0
        assert warm_model.cycles == cold_model.cycles
        assert (warm.stats.architectural_dict()
                == cold.stats.architectural_dict())
        assert warm.output == cold.output

    def test_functional_and_fused_share_a_file(self, tmp_path):
        built = built_benchmark("qsort")
        run(built, engine="superblock",
            plan_cache=fresh_cache(tmp_path, built))
        fused = run(built, engine="superblock",
                    cycle_model=DoeModel(issue_width=built.issue_width),
                    plan_cache=fresh_cache(tmp_path, built))
        # Functional entries don't serve the fused namespace ...
        assert fused.interpreter.superblock.translations > 0
        warm = run(built, engine="superblock",
                   cycle_model=DoeModel(issue_width=built.issue_width),
                   plan_cache=fresh_cache(tmp_path, built))
        # ... but both namespaces persist side by side.
        assert warm.interpreter.superblock.translations == 0
        assert warm.interpreter.superblock.plan_cache_hits > 0
        files = [n for n in os.listdir(str(tmp_path))
                 if n.startswith("plans-") and n.endswith(".json")]
        assert len(files) == 1

    def test_per_instruction_configs_bypass_the_cache(self, tmp_path):
        """A profiled run neither reads nor records plan entries."""
        from repro.telemetry import HotspotProfiler

        built = built_benchmark("qsort")
        cache = fresh_cache(tmp_path, built)
        result = run(built, engine="superblock",
                     cycle_model=DoeModel(issue_width=built.issue_width),
                     profiler=HotspotProfiler(mode="block"),
                     plan_cache=cache)
        assert result.interpreter.superblock.plan_cache is None
        assert len(cache) == 0

    def test_no_fusion_reference_config_is_uncached(self, tmp_path):
        """fuse_cycles=False observes per-instruction: nothing cached."""
        built = built_benchmark("qsort")
        cache = fresh_cache(tmp_path, built)
        result = run(built, engine="superblock",
                     cycle_model=DoeModel(issue_width=built.issue_width),
                     plan_cache=cache, fuse_cycles=False)
        assert result.interpreter.superblock.translations == 0
        assert len(cache) == 0
