"""Differential suite: fused cycle accounting vs the observe path.

Cycle fusion (``docs/performance.md``) compiles AIE/DOE accounting
into translated superblock plans.  The contract is *bitwise* equality
with the per-instruction ``observe`` path — not approximation — so
every test here runs the same workload twice, once with
``fuse_cycles=True`` and once with ``fuse_cycles=False``, and compares
exact integers: cycle counts, architectural statistics, and the cycle
model's full drift state.
"""

from __future__ import annotations

import pytest

from repro.cycles.aie import AieModel
from repro.cycles.doe import DoeModel
from repro.cycles.memmodel import HierarchyConfig, build_hierarchy
from repro.framework.pipeline import build_benchmark, run
from repro.programs import program_names
from repro.telemetry import HotspotProfiler

BENCHMARKS = ("cjpeg", "djpeg", "fft", "qsort", "aes", "dct4x4", "crc32")

#: Cap per differential run — enough to cross HOT_THRESHOLD on every
#: hot loop and exercise the memory hierarchy, small enough that the
#: full matrix stays in tier-1 time.
CAP = 60_000

#: Two hierarchy shapes: the paper's default and a deliberately tiny,
#: blocking-port variant that forces misses, writebacks and port
#: stalls through the fused ``_yacc`` calls.
HIERARCHIES = {
    "default": HierarchyConfig(),
    "tiny": HierarchyConfig(
        l1_size=256, l1_assoc=1, l2_size=2 * 1024, l2_assoc=2,
        main_delay=40, l1_blocking_port=True,
    ),
}

_BUILDS = {}


def built_benchmark(name):
    if name not in _BUILDS:
        _BUILDS[name] = build_benchmark(name)
    return _BUILDS[name]


def make_model(kind, width, config):
    memory = build_hierarchy(config)
    if kind == "aie":
        return AieModel(memory=memory)
    return DoeModel(issue_width=width, memory=memory)


def doe_drift_state(model):
    """The slot-drift state the fused flush must reproduce exactly."""
    return {
        "slot_last_start": list(model.slot_last_start),
        "fetch_floor": model.fetch_floor,
        "max_completion": model.max_completion,
        "reg_write_cycle": list(model.reg_write_cycle),
    }


def differential_pair(name, kind, config):
    built = built_benchmark(name)
    fused_model = make_model(kind, built.issue_width, config)
    fused = run(built, engine="superblock", cycle_model=fused_model,
                max_instructions=CAP)
    ref_model = make_model(kind, built.issue_width, config)
    ref = run(built, engine="superblock", cycle_model=ref_model,
              max_instructions=CAP, fuse_cycles=False)
    return fused, fused_model, ref, ref_model


class TestFusedMatchesObserve:
    def test_benchmark_list_is_current(self):
        # The matrix below must cover every bundled benchmark.
        assert set(BENCHMARKS) == set(program_names())

    @pytest.mark.parametrize("hierarchy", sorted(HIERARCHIES))
    @pytest.mark.parametrize("kind", ["aie", "doe"])
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_cycles_bitwise_identical(self, name, kind, hierarchy):
        fused, fused_model, ref, ref_model = differential_pair(
            name, kind, HIERARCHIES[hierarchy]
        )
        assert fused_model.cycles == ref_model.cycles
        assert fused_model.instructions == ref_model.instructions
        assert fused_model.ops == ref_model.ops
        assert (fused.stats.architectural_dict()
                == ref.stats.architectural_dict())
        assert fused.output == ref.output
        # The fused engine actually took the fused path (otherwise
        # this differential is vacuous).
        assert fused.interpreter.superblock.translations > 0

    @pytest.mark.parametrize("name", ["dct4x4", "qsort"])
    def test_doe_drift_state_identical(self, name):
        _fused, fused_model, _ref, ref_model = differential_pair(
            name, "doe", HIERARCHIES["tiny"]
        )
        assert doe_drift_state(fused_model) == doe_drift_state(ref_model)

    def test_aie_pending_state_identical(self):
        _fused, fused_model, _ref, ref_model = differential_pair(
            "fft", "aie", HIERARCHIES["default"]
        )
        assert fused_model.current_cycle == ref_model.current_cycle

    def test_memory_hierarchy_counters_identical(self):
        from repro.cycles.memmodel import find_cache

        _fused, fused_model, _ref, ref_model = differential_pair(
            "dct4x4", "doe", HIERARCHIES["tiny"]
        )
        for level in ("L1", "L2"):
            a = find_cache(fused_model.memory, level)
            b = find_cache(ref_model.memory, level)
            assert (a.hits, a.misses, a.writebacks) == (
                b.hits, b.misses, b.writebacks)


class TestProfilerInteraction:
    def test_profiled_run_attribution_still_sums(self):
        """A profiler forces the observe path; totals stay exact."""
        built = built_benchmark("dct4x4")
        profiler = HotspotProfiler(mode="block")
        model = DoeModel(issue_width=built.issue_width)
        result = run(built, engine="superblock", cycle_model=model,
                     profiler=profiler, max_instructions=CAP)
        assert (profiler.total_instructions
                == result.stats.executed_instructions)
        assert sum(profiler.pc_cycles.values()) == model.cycles

    def test_profiled_cycles_match_fused_cycles(self):
        """Profiling must not change the simulated cycle count."""
        built = built_benchmark("dct4x4")
        fused_model = DoeModel(issue_width=built.issue_width)
        run(built, engine="superblock", cycle_model=fused_model,
            max_instructions=CAP)
        prof_model = DoeModel(issue_width=built.issue_width)
        run(built, engine="superblock", cycle_model=prof_model,
            profiler=HotspotProfiler(mode="block"),
            max_instructions=CAP)
        assert fused_model.cycles == prof_model.cycles


class TestSnapshotInteraction:
    def test_checkpoint_resume_under_fused_engine(self, tmp_path):
        built = built_benchmark("dct4x4")
        straight_model = DoeModel(issue_width=built.issue_width)
        straight = run(built, engine="superblock",
                       cycle_model=straight_model)
        part_model = DoeModel(issue_width=built.issue_width)
        part = run(built, engine="superblock", cycle_model=part_model,
                   checkpoint_every=40_000, checkpoint_dir=str(tmp_path))
        assert part.checkpoints
        middle = part.checkpoints[len(part.checkpoints) // 2]
        resume_model = DoeModel(issue_width=built.issue_width)
        resumed = run(built, engine="superblock",
                      cycle_model=resume_model, resume_from=middle)
        assert resume_model.cycles == straight_model.cycles
        assert doe_drift_state(resume_model) == doe_drift_state(
            straight_model)
        assert (resumed.stats.architectural_dict()
                == straight.stats.architectural_dict())
        assert resumed.output == straight.output
