"""Compiler middle end: IR generation, optimisation, register allocation."""

import pytest

from repro.lang.ir import (
    IBin,
    ICall,
    ICondBr,
    IConst,
    ICopy,
    IJmp,
    ILoad,
    IRet,
    IStore,
    VReg,
)
from repro.lang.irgen import generate_ir
from repro.lang.liveness import build_intervals, compute_liveness
from repro.lang.opt import optimize_function
from repro.lang.parser import parse_program
from repro.lang.regalloc import (
    allocate_registers,
    CALLEE_SAVED,
    CALLER_SAVED,
)
from repro.lang.sema import analyze


def to_ir(source, optimize=False):
    program = parse_program(source)
    sema = analyze(program)
    ir = generate_ir(program, sema)
    if optimize:
        for fn in ir.functions:
            optimize_function(fn)
    return ir


def all_instrs(fn):
    return [i for b in fn.blocks for i in b.instrs]


class TestIrGen:
    def test_simple_function_shape(self):
        ir = to_ir("int add2(int a, int b) { return a + b; }")
        fn = ir.functions[0]
        assert fn.num_params == 2
        instrs = all_instrs(fn)
        assert any(isinstance(i, IBin) and i.op == "add" for i in instrs)
        assert any(isinstance(i, IRet) for i in instrs)

    def test_void_return(self):
        ir = to_ir("void f() { }")
        ret = all_instrs(ir.functions[0])[-1]
        assert isinstance(ret, IRet) and ret.value is None

    def test_implicit_return_zero(self):
        ir = to_ir("int main() { print_int(1); }")
        ret = all_instrs(ir.functions[0])[-1]
        assert isinstance(ret, IRet) and ret.value == 0

    def test_string_literal_becomes_global(self):
        ir = to_ir('int main() { puts("hi"); return 0; }')
        names = [g.name for g in ir.globals]
        assert any(name.startswith(".Lstr") for name in names)

    def test_string_literals_interned(self):
        ir = to_ir('int main() { puts("x"); puts("x"); return 0; }')
        strings = [g for g in ir.globals if g.init_string == "x"]
        assert len(strings) == 1

    def test_pointer_arithmetic_scaled(self):
        ir = to_ir("int f(int *p, int i) { return p[i]; }", optimize=True)
        instrs = all_instrs(ir.functions[0])
        assert any(
            isinstance(i, IBin) and i.op == "shl" and i.b == 2
            for i in instrs
        )

    def test_local_array_in_stack_slot(self):
        ir = to_ir("int f() { int a[10]; a[0] = 1; return a[0]; }")
        assert ir.functions[0].stack_slots == {0: 40}

    def test_char_access_uses_byte_ops(self):
        ir = to_ir(
            "int f(char *s) { s[0] = 65; return s[1]; }", optimize=True
        )
        instrs = all_instrs(ir.functions[0])
        assert any(isinstance(i, IStore) and i.size == 1 for i in instrs)
        assert any(isinstance(i, ILoad) and i.size == 1 for i in instrs)

    def test_line_numbers_attached(self):
        ir = to_ir("int main() {\n    int x = 1;\n    return x;\n}")
        lines = [i.line for i in all_instrs(ir.functions[0]) if i.line]
        assert 2 in lines and 3 in lines


class TestOptimizer:
    def test_constant_folding(self):
        ir = to_ir("int f() { return 2 + 3 * 4; }", optimize=True)
        instrs = all_instrs(ir.functions[0])
        assert not any(isinstance(i, IBin) for i in instrs)
        ret = instrs[-1]
        assert isinstance(ret, IRet) and ret.value == 14

    def test_mul_by_power_of_two_becomes_shift(self):
        ir = to_ir("int f(int x) { return x * 8; }", optimize=True)
        instrs = all_instrs(ir.functions[0])
        assert any(isinstance(i, IBin) and i.op == "shl" for i in instrs)
        assert not any(isinstance(i, IBin) and i.op == "mul" for i in instrs)

    def test_dead_code_removed(self):
        ir = to_ir("int f(int x) { int unused = x * 99; return x; }",
                   optimize=True)
        instrs = all_instrs(ir.functions[0])
        assert not any(isinstance(i, IBin) and i.op == "mul" for i in instrs)

    def test_constant_branch_folded(self):
        ir = to_ir("int f() { if (1 < 2) return 5; return 6; }",
                   optimize=True)
        instrs = all_instrs(ir.functions[0])
        assert not any(isinstance(i, ICondBr) for i in instrs)

    def test_unreachable_blocks_removed(self):
        ir = to_ir("int f() { return 1; }", optimize=True)
        fn = ir.functions[0]
        assert all(
            b.label == fn.blocks[0].label or b.instrs for b in fn.blocks
        )

    def test_calls_never_removed(self):
        ir = to_ir("int g() { return 1; } int f() { g(); return 0; }",
                   optimize=True)
        instrs = all_instrs(ir.functions[1])
        assert any(isinstance(i, ICall) for i in instrs)

    def test_stores_never_removed(self):
        ir = to_ir("int g; void f() { g = 1; }", optimize=True)
        instrs = all_instrs(ir.functions[0])
        assert any(isinstance(i, IStore) for i in instrs)

    def test_add_zero_eliminated(self):
        ir = to_ir("int f(int x) { return x + 0; }", optimize=True)
        instrs = all_instrs(ir.functions[0])
        assert not any(isinstance(i, IBin) for i in instrs)

    def test_division_by_zero_not_folded(self):
        # Runtime semantics (div-by-zero -> -1) must be preserved; the
        # optimiser leaves the instruction alone.
        ir = to_ir("int f() { return 7 / 0; }", optimize=True)
        instrs = all_instrs(ir.functions[0])
        assert any(isinstance(i, IBin) and i.op == "div" for i in instrs)


class TestLiveness:
    def test_param_live_at_entry(self):
        ir = to_ir("int f(int a) { return a; }")
        fn = ir.functions[0]
        intervals, _ranges = build_intervals(fn)
        param_iv = next(iv for iv in intervals if iv.reg == fn.param_regs[0])
        assert param_iv.start == 0

    def test_loop_carried_value_spans_loop(self):
        ir = to_ir(
            "int f(int n) { int s = 0; "
            "for (int i = 0; i < n; i++) s += i; return s; }"
        )
        fn = ir.functions[0]
        info = compute_liveness(fn)
        # Some value must be live around the loop back edge.
        assert any(info.live_out[b.label] for b in fn.blocks)

    def test_call_crossing_detected(self):
        ir = to_ir(
            "int g() { return 1; } "
            "int f(int a) { int x = a + 1; g(); return x; }"
        )
        fn = ir.functions[1]
        intervals, _ = build_intervals(fn)
        assert any(iv.crosses_call for iv in intervals)


class TestRegalloc:
    def test_call_crossing_gets_callee_saved(self):
        ir = to_ir(
            "int g() { return 1; } "
            "int f(int a) { int x = a * 3; g(); return x; }",
            optimize=True,
        )
        fn = ir.functions[1]
        alloc = allocate_registers(fn)
        crossing = [iv for iv in alloc.intervals if iv.crosses_call]
        assert crossing
        for iv in crossing:
            kind, where = alloc.locations[iv.reg]
            if kind == "reg":
                assert where in CALLEE_SAVED

    def test_spilling_under_pressure(self):
        # 25 simultaneously-live values exceed the 20-register pool.
        decls = "\n".join(f"int v{i} = n + {i};" for i in range(25))
        uses = " + ".join(f"v{i}" for i in range(25))
        ir = to_ir(f"int f(int n) {{ {decls} return {uses}; }}")
        fn = ir.functions[0]
        alloc = allocate_registers(fn)
        assert alloc.num_spill_slots > 0
        # No physical register double-booked among overlapping intervals.
        by_reg = {}
        for iv in alloc.intervals:
            kind, where = alloc.locations[iv.reg]
            if kind != "reg":
                continue
            for other in by_reg.get(where, []):
                assert not iv.overlaps(other), f"r{where} double-booked"
            by_reg.setdefault(where, []).append(iv)

    def test_no_pressure_no_spills(self):
        ir = to_ir("int f(int a, int b) { return a + b; }", optimize=True)
        alloc = allocate_registers(ir.functions[0])
        assert alloc.num_spill_slots == 0

    def test_used_callee_saved_reported(self):
        ir = to_ir(
            "int g() { return 1; } "
            "int f(int a) { int x = a + 2; g(); return x; }",
            optimize=True,
        )
        alloc = allocate_registers(ir.functions[1])
        assert set(alloc.used_callee_saved) <= set(CALLEE_SAVED)
        assert alloc.used_callee_saved
