"""Linker and loader: layout, symbol resolution, relocation, loading."""

import pytest

from repro.adl.kahrisma import ISA_VLIW4, KAHRISMA
from repro.binutils.assembler import Assembler
from repro.binutils.elf import ElfFile
from repro.binutils.linker import LinkError, link
from repro.binutils.loader import load_executable
from repro.sim.interpreter import Interpreter
from repro.sim.state import TEXT_BASE


@pytest.fixture(scope="module")
def assembler():
    return Assembler(KAHRISMA)


class TestSymbolResolution:
    def test_cross_object_call(self, assembler):
        main_obj = assembler.assemble(
            ".global $risc$main\n$risc$main:\ncall helper\nhalt\n", "m.s"
        )
        helper_obj = assembler.assemble(
            ".global helper\nhelper:\naddi r9, r0, 42\nret\n", "h.s"
        )
        elf, info = link(
            [main_obj, helper_obj], KAHRISMA,
            entry_symbol="$risc$main", entry_isa=0,
        )
        program = load_executable(elf, KAHRISMA)
        Interpreter(program.state).run(max_instructions=100)
        assert program.state.regs[9] == 42

    def test_duplicate_global_rejected(self, assembler):
        a = assembler.assemble(".global f\nf:\nnop\n", "a.s")
        b = assembler.assemble(".global f\nf:\nnop\n", "b.s")
        with pytest.raises(LinkError) as e:
            link([a, b], KAHRISMA, entry_symbol="f", entry_isa=0)
        assert "duplicate" in str(e.value)

    def test_undefined_symbol_reported_with_referrer(self, assembler):
        obj = assembler.assemble("call missing_fn\n", "app.s")
        with pytest.raises(LinkError) as e:
            link([obj], KAHRISMA, entry_symbol="missing_fn", entry_isa=0,
                 include_libc=False)
        assert "missing_fn" in str(e.value)
        assert "app.s" in str(e.value)

    def test_missing_entry_symbol(self, assembler):
        obj = assembler.assemble("nop\n", "a.s")
        with pytest.raises(LinkError):
            link([obj], KAHRISMA, entry_symbol="$risc$main", entry_isa=0)

    def test_local_symbols_do_not_clash(self, assembler):
        a = assembler.assemble(
            ".global $risc$main\n$risc$main:\nlocal:\nhalt\n", "a.s"
        )
        b = assembler.assemble("local:\nnop\n", "b.s")
        elf, _info = link([a, b], KAHRISMA, entry_symbol="$risc$main",
                          entry_isa=0)
        assert elf.entry == TEXT_BASE


class TestRelocations:
    def test_branch_across_objects(self, assembler):
        # Forward and backward PC-relative branches resolved at link.
        obj = assembler.assemble(
            ".global $risc$main\n"
            "$risc$main:\n"
            "    addi r5, r0, 0\n"
            "loop:\n"
            "    addi r5, r5, 1\n"
            "    addi r6, r0, 3\n"
            "    bne r5, r6, loop\n"
            "    halt\n",
            "m.s",
        )
        elf, _ = link([obj], KAHRISMA, entry_symbol="$risc$main",
                      entry_isa=0)
        program = load_executable(elf, KAHRISMA)
        Interpreter(program.state).run(max_instructions=100)
        assert program.state.regs[5] == 3

    def test_hi_lo_address_materialisation(self, assembler):
        obj = assembler.assemble(
            ".global $risc$main\n"
            "$risc$main:\n"
            "    la r5, value\n"
            "    lw r6, 0(r5)\n"
            "    halt\n"
            ".data\n"
            ".global value\n"
            "value: .word 123456789\n",
            "m.s",
        )
        elf, info = link([obj], KAHRISMA, entry_symbol="$risc$main",
                         entry_isa=0)
        program = load_executable(elf, KAHRISMA)
        Interpreter(program.state).run(max_instructions=100)
        assert program.state.regs[6] == 123456789
        assert program.state.regs[5] == info.symbols["value"]

    def test_abs32_in_data(self, assembler):
        obj = assembler.assemble(
            ".global $risc$main\n$risc$main:\nhalt\n"
            ".data\n.global ptr\nptr: .word $risc$main\n",
            "m.s",
        )
        elf, info = link([obj], KAHRISMA, entry_symbol="$risc$main",
                         entry_isa=0)
        program = load_executable(elf, KAHRISMA)
        stored = program.state.mem.load4(info.symbols["ptr"])
        assert stored == info.symbols["$risc$main"]

    def test_vliw_branch_anchor(self, assembler):
        source = (
            ".isa vliw4\n"
            ".global $vliw4$main\n"
            "$vliw4$main:\n"
            "{ addi r5, r0, 1 }\n"
            "loop:\n"
            "{ addi r5, r5, 1 ; addi r6, r0, 4 }\n"
            "{ bne r5, r6, loop }\n"
            "{ halt }\n"
        )
        obj = assembler.assemble(source, "v.s")
        elf, _ = link([obj], KAHRISMA, entry_symbol="$vliw4$main",
                      entry_isa=ISA_VLIW4)
        program = load_executable(elf, KAHRISMA)
        Interpreter(program.state).run(max_instructions=100)
        assert program.state.regs[5] == 4


class TestLayoutAndLoading:
    def test_section_layout_order(self, assembler):
        obj = assembler.assemble(
            "nop\n.data\n.global d\nd: .word 1\n.rodata\nr: .word 2\n"
            ".bss\nb: .space 16\n",
            "m.s",
        )
        elf, info = link([obj], KAHRISMA, entry_symbol="d", entry_isa=0,
                         include_libc=False)
        bases = info.section_bases
        assert bases[".text"] == TEXT_BASE
        assert bases[".text"] < bases[".rodata"] < bases[".data"] \
            < bases[".bss"]
        assert info.image_end >= bases[".bss"] + 16

    def test_libc_stubs_linked_by_default(self, assembler):
        obj = assembler.assemble(
            ".global $risc$main\n$risc$main:\ncall $risc$exit\n", "m.s"
        )
        elf, info = link([obj], KAHRISMA, entry_symbol="$risc$main",
                         entry_isa=0)
        assert "$risc$exit" in info.symbols
        assert "$vliw8$exit" in info.symbols  # one stub set per ISA

    def test_loader_initialises_state(self, assembler):
        obj = assembler.assemble(
            ".global $risc$main\n.func $risc$main\n$risc$main:\nhalt\n"
            ".endfunc\n.bss\nbig: .space 4096\n",
            "m.s",
        )
        elf, info = link([obj], KAHRISMA, entry_symbol="$risc$main",
                         entry_isa=0)
        program = load_executable(ElfFile.read(elf.write()), KAHRISMA)
        state = program.state
        assert state.ip == info.symbols["$risc$main"]
        assert state.isa_id == 0
        assert program.syscalls.heap_base >= info.image_end
        fn = program.debug_info.function_at(state.ip)
        assert fn is not None and fn.name == "$risc$main"

    def test_loader_isa_override(self, assembler):
        obj = assembler.assemble(
            ".global $risc$main\n$risc$main:\nhalt\n", "m.s"
        )
        elf, _ = link([obj], KAHRISMA, entry_symbol="$risc$main",
                      entry_isa=0)
        program = load_executable(elf, KAHRISMA, isa_id=ISA_VLIW4)
        assert program.state.isa_id == ISA_VLIW4

    def test_non_executable_rejected_by_loader(self, assembler):
        obj = assembler.assemble("nop\n", "m.s")
        from repro.sim.errors import SimulationError

        with pytest.raises(SimulationError):
            load_executable(obj.to_elf(), KAHRISMA)

    def test_debug_maps_merged_and_shifted(self, assembler):
        a = assembler.assemble(
            '.file 1 "a.kc"\n.loc 1 1\nnop\n.global e\ne:\nhalt\n', "a.s"
        )
        b = assembler.assemble('.file 1 "b.kc"\n.loc 1 9\nnop\n', "b.s")
        elf, info = link([a, b], KAHRISMA, entry_symbol="e", entry_isa=0,
                         include_libc=False)
        program = load_executable(elf, KAHRISMA)
        first = program.debug_info.lookup(TEXT_BASE)
        assert first.src_file == "a.kc" and first.src_line == 1
        b_text = TEXT_BASE + 8  # two words from a.s
        second = program.debug_info.lookup(b_text)
        assert second.src_file == "b.kc" and second.src_line == 9
