"""Cross-cutting integration tests: the paper's headline properties.

These assert the qualitative claims of Section VII on the reproduction
as invariants, so a regression that breaks an experiment fails CI —
the benchmark harnesses then report the quantitative values.
"""

import pytest

from repro.cycles.aie import AieModel
from repro.cycles.doe import DoeModel
from repro.cycles.ilp import IlpModel
from repro.cycles.memmodel import find_cache
from repro.framework.pipeline import build_benchmark, run
from repro.programs import load_program
from repro.sim.disasm import format_instruction
from repro.targetgen.optable import build_target


class TestDecodeCacheEffectiveness:
    """Section VII-A: the decode cache and prediction hit rates."""

    def test_cjpeg_cache_and_prediction_rates(self, kc, simulate):
        built = kc(load_program("cjpeg"), filename="cjpeg.kc")
        _program, stats = simulate(built)
        # Paper: 99.991% decodes avoided, 99.2% lookups avoided.
        assert stats.decode_avoidance > 0.99
        assert stats.lookup_avoidance > 0.95

    def test_memory_instruction_share(self, kc, simulate):
        built = kc(load_program("cjpeg"), filename="cjpeg.kc")
        _program, stats = simulate(built)
        assert 0.05 < stats.memory_instruction_fraction < 0.5


class TestIlpOrdering:
    """Figure 4's qualitative claim: DCT/AES high ILP, FFT/qsort low."""

    @pytest.fixture(scope="class")
    def ilp_values(self, kc, simulate):
        values = {}
        for name in ("dct4x4", "aes", "fft", "qsort", "cjpeg"):
            built = kc(load_program(name), filename=f"{name}.kc")
            model = IlpModel()
            simulate(built, cycle_model=model)
            values[name] = model.ilp
        return values

    def test_dct_and_aes_dominate(self, ilp_values):
        low = max(ilp_values["fft"], ilp_values["qsort"],
                  ilp_values["cjpeg"])
        assert ilp_values["dct4x4"] > low
        assert ilp_values["aes"] > low

    def test_recursive_fft_ilp_is_low(self, ilp_values):
        """The paper singles this out: the recursive FFT limits ILP."""
        assert ilp_values["fft"] < 4.0


class TestCycleModelRelations:
    def test_ilp_is_an_upper_bound(self, kc, simulate):
        """ILP (infinite resources) must beat any finite-width DOE."""
        built = kc(load_program("dct4x4"), filename="dct4x4.kc")
        ilp = IlpModel()
        simulate(built, cycle_model=ilp)
        doe = DoeModel(issue_width=8)
        simulate(built, cycle_model=doe)
        assert ilp.cycles <= doe.cycles

    def test_doe_beats_aie(self, kc, simulate):
        """Drifting slots cannot be slower than lock-step issue."""
        built = kc(load_program("dct4x4"), isa="vliw4",
                   filename="dct4x4.kc")
        aie = AieModel()
        simulate(built, cycle_model=aie)
        doe = DoeModel(issue_width=4)
        simulate(built, cycle_model=doe)
        assert doe.cycles <= aie.cycles * 1.02

    def test_wider_vliw_never_slower(self, kc, simulate):
        cycles = {}
        for isa, width in (("risc", 1), ("vliw2", 2), ("vliw4", 4)):
            built = kc(load_program("dct4x4"), isa=isa,
                       filename="dct4x4.kc")
            doe = DoeModel(issue_width=width)
            simulate(built, cycle_model=doe)
            cycles[width] = doe.cycles
        assert cycles[1] >= cycles[2] >= cycles[4]

    def test_aes_l1_misses(self, kc, simulate):
        """Paper: AES's working set misses in the 2-KiB L1 (~14%)."""
        built = kc(load_program("aes"), filename="aes.kc")
        doe = DoeModel(issue_width=1)
        simulate(built, cycle_model=doe)
        l1 = find_cache(doe.memory, "L1")
        assert l1.miss_rate > 0.02

    def test_dct_l1_mostly_hits(self, kc, simulate):
        built = kc(load_program("dct4x4"), filename="dct4x4.kc")
        doe = DoeModel(issue_width=1)
        simulate(built, cycle_model=doe)
        l1 = find_cache(doe.memory, "L1")
        assert l1.miss_rate < 0.06


class TestMixedIsaApplication:
    def test_three_isa_application(self):
        source = """
        int stage1(int x) { return x * 2 + 1; }
        int stage2(int x) { return x * x - 3; }
        int main() {
            int v = 5;
            v = stage1(v);
            v = stage2(v);
            print_int(v);
            putchar('\\n');
            return 0;
        }
        """
        from repro.framework.pipeline import build

        built = build(source, isa="risc",
                      isa_map={"stage1": "vliw2", "stage2": "vliw8"},
                      filename="three.kc")
        result = run(built)
        assert result.output == "118\n"
        assert result.stats.isa_switches == 4

    def test_same_function_name_multiple_isas_via_stubs(self):
        """The libc stub set proves multiple implementations coexist."""
        from repro.binutils.linker import link
        from repro.binutils.assembler import Assembler
        from repro.adl.kahrisma import KAHRISMA

        obj = Assembler(KAHRISMA).assemble(
            ".global $risc$main\n$risc$main:\nhalt\n", "m.s"
        )
        _elf, info = link([obj], KAHRISMA, entry_symbol="$risc$main",
                          entry_isa=0)
        exit_impls = [s for s in info.symbols if s.endswith("$exit")]
        assert sorted(exit_impls) == [
            "$risc$exit", "$vliw2$exit", "$vliw4$exit",
            "$vliw6$exit", "$vliw8$exit",
        ]


class TestDisassemblerRoundTrip:
    def test_disasm_reassembles_identically(self, kc, arch):
        """text -> decode -> format -> assemble -> identical bytes."""
        from repro.binutils.assembler import Assembler
        from repro.sim.decoder import decode_instruction
        from repro.sim.memory import Memory

        built = kc(load_program("qsort"), filename="qsort.kc")
        text = built.elf.section(".text")
        mem = Memory()
        mem.store_bytes(text.addr, text.data)
        table = build_target(arch).optable(0)

        lines = []
        addr = text.addr
        count = 0
        while addr < text.addr + len(text.data) and count < 200:
            dec = decode_instruction(table, mem, addr)
            lines.append("    " + format_instruction(dec))
            addr += dec.size
            count += 1

        # Branch/jump operands are numeric offsets in disassembly; the
        # assembler accepts them as raw immediates, so byte-identical
        # re-assembly is required.
        reassembled = Assembler(arch).assemble("\n".join(lines), "re.s")
        assert bytes(reassembled.sections[".text"]) == \
            text.data[:len(reassembled.sections[".text"])]
