"""Semantic unit tests of generated simulation functions.

Every operation's simulation function is exercised directly, with a
minimal fake state — the same functions later drive the interpreter.
"""

import pytest

from repro.sim.memory import Memory
from repro.targetgen.behavior_compiler import s32


class FakeState:
    def __init__(self):
        self.regs = [0] * 32
        self.mem = Memory()
        self.halted = False
        self.switched_to = None
        self.simops = []

    def switch_isa(self, isa):
        self.switched_to = isa

    def simop(self, ident):
        self.simops.append(ident)
        return None


@pytest.fixture()
def state():
    return FakeState()


def execute(table, name, state, next_ip=4, ip=0, **fields):
    entry = table.by_name[name]
    word = entry.encode(fields)
    vals = entry.decode(word)
    regwr, memwr = [], []
    result = entry.sim_fn(state, vals, ip, next_ip, regwr, memwr)
    return result, regwr, memwr


class TestAlu:
    def test_add_wraps_32_bits(self, risc_table, state):
        state.regs[1] = 0xFFFFFFFF
        state.regs[2] = 2
        _r, regwr, _m = execute(risc_table, "add", state, rd=3, rs1=1, rs2=2)
        assert regwr == [(3, 1)]

    def test_sub_underflow_wraps(self, risc_table, state):
        state.regs[1] = 0
        state.regs[2] = 1
        _r, regwr, _m = execute(risc_table, "sub", state, rd=3, rs1=1, rs2=2)
        assert regwr == [(3, 0xFFFFFFFF)]

    def test_sra_is_arithmetic(self, risc_table, state):
        state.regs[1] = 0x80000000
        state.regs[2] = 4
        _r, regwr, _m = execute(risc_table, "sra", state, rd=3, rs1=1, rs2=2)
        assert regwr == [(3, 0xF8000000)]

    def test_srl_is_logical(self, risc_table, state):
        state.regs[1] = 0x80000000
        state.regs[2] = 4
        _r, regwr, _m = execute(risc_table, "srl", state, rd=3, rs1=1, rs2=2)
        assert regwr == [(3, 0x08000000)]

    def test_shift_amount_masked_to_5_bits(self, risc_table, state):
        state.regs[1] = 1
        state.regs[2] = 33  # hardware masks to 1
        _r, regwr, _m = execute(risc_table, "sll", state, rd=3, rs1=1, rs2=2)
        assert regwr == [(3, 2)]

    def test_slt_signed_vs_sltu_unsigned(self, risc_table, state):
        state.regs[1] = 0xFFFFFFFF  # -1 signed, huge unsigned
        state.regs[2] = 1
        _r, regwr, _m = execute(risc_table, "slt", state, rd=3, rs1=1, rs2=2)
        assert regwr == [(3, 1)]
        _r, regwr, _m = execute(risc_table, "sltu", state, rd=3, rs1=1, rs2=2)
        assert regwr == [(3, 0)]

    def test_mul_signed(self, risc_table, state):
        state.regs[1] = (-3) & 0xFFFFFFFF
        state.regs[2] = 5
        _r, regwr, _m = execute(risc_table, "mul", state, rd=3, rs1=1, rs2=2)
        assert s32(regwr[0][1]) == -15

    def test_mulh_high_word(self, risc_table, state):
        state.regs[1] = 0x40000000
        state.regs[2] = 8
        _r, regwr, _m = execute(risc_table, "mulh", state, rd=3, rs1=1, rs2=2)
        assert regwr == [(3, 2)]

    def test_div_truncates_toward_zero(self, risc_table, state):
        state.regs[1] = (-7) & 0xFFFFFFFF
        state.regs[2] = 2
        _r, regwr, _m = execute(risc_table, "div", state, rd=3, rs1=1, rs2=2)
        assert s32(regwr[0][1]) == -3

    def test_div_by_zero_yields_minus_one(self, risc_table, state):
        state.regs[1] = 42
        _r, regwr, _m = execute(risc_table, "div", state, rd=3, rs1=1, rs2=2)
        assert regwr == [(3, 0xFFFFFFFF)]

    def test_rem_sign_follows_dividend(self, risc_table, state):
        state.regs[1] = (-7) & 0xFFFFFFFF
        state.regs[2] = 2
        _r, regwr, _m = execute(risc_table, "rem", state, rd=3, rs1=1, rs2=2)
        assert s32(regwr[0][1]) == -1

    def test_rem_by_zero_yields_dividend(self, risc_table, state):
        state.regs[1] = 42
        _r, regwr, _m = execute(risc_table, "rem", state, rd=3, rs1=1, rs2=2)
        assert regwr == [(3, 42)]


class TestImmediates:
    def test_addi_sign_extends(self, risc_table, state):
        state.regs[1] = 10
        _r, regwr, _m = execute(risc_table, "addi", state, rd=3, rs1=1, imm=-4)
        assert regwr == [(3, 6)]

    def test_andi_zero_extends(self, risc_table, state):
        state.regs[1] = 0xFFFF
        _r, regwr, _m = execute(
            risc_table, "andi", state, rd=3, rs1=1, imm=0x3FFF
        )
        assert regwr == [(3, 0x3FFF)]

    def test_lui_shifts_14(self, risc_table, state):
        _r, regwr, _m = execute(risc_table, "lui", state, rd=3, imm=0x2ABCD)
        assert regwr == [(3, 0x2ABCD << 14)]

    def test_lui_ori_builds_any_constant(self, risc_table, state):
        value = 0xDEADBEEF
        _r, regwr, _m = execute(
            risc_table, "lui", state, rd=3, imm=value >> 14
        )
        state.regs[3] = regwr[0][1]
        _r, regwr, _m = execute(
            risc_table, "ori", state, rd=3, rs1=3, imm=value & 0x3FFF
        )
        assert regwr == [(3, value)]


class TestMemoryOps:
    def test_word_roundtrip(self, risc_table, state):
        state.regs[1] = 0x1000
        state.regs[2] = 0xCAFEBABE
        _r, _w, memwr = execute(risc_table, "sw", state, rt=2, rs1=1, imm=8)
        assert memwr == [(4, 0x1008, 0xCAFEBABE)]
        state.mem.store4(0x1008, 0xCAFEBABE)
        _r, regwr, _m = execute(risc_table, "lw", state, rd=3, rs1=1, imm=8)
        assert regwr == [(3, 0xCAFEBABE)]

    def test_lb_sign_extends(self, risc_table, state):
        state.mem.store1(0x100, 0x80)
        state.regs[1] = 0x100
        _r, regwr, _m = execute(risc_table, "lb", state, rd=3, rs1=1, imm=0)
        assert regwr == [(3, 0xFFFFFF80)]

    def test_lbu_zero_extends(self, risc_table, state):
        state.mem.store1(0x100, 0x80)
        state.regs[1] = 0x100
        _r, regwr, _m = execute(risc_table, "lbu", state, rd=3, rs1=1, imm=0)
        assert regwr == [(3, 0x80)]

    def test_lh_sign_extends(self, risc_table, state):
        state.mem.store2(0x100, 0x8001)
        state.regs[1] = 0x100
        _r, regwr, _m = execute(risc_table, "lh", state, rd=3, rs1=1, imm=0)
        assert regwr == [(3, 0xFFFF8001)]

    def test_negative_offset(self, risc_table, state):
        state.mem.store4(0x0FC, 77)
        state.regs[1] = 0x100
        _r, regwr, _m = execute(risc_table, "lw", state, rd=3, rs1=1, imm=-4)
        assert regwr == [(3, 77)]


class TestControlFlow:
    def test_beq_taken_and_not_taken(self, risc_table, state):
        state.regs[1] = 5
        state.regs[2] = 5
        r, _w, _m = execute(risc_table, "beq", state, next_ip=0x104,
                            rs1=1, rs2=2, imm=3)
        assert r == 0x104 + 12
        state.regs[2] = 6
        r, _w, _m = execute(risc_table, "beq", state, next_ip=0x104,
                            rs1=1, rs2=2, imm=3)
        assert r is None

    def test_backward_branch(self, risc_table, state):
        r, _w, _m = execute(risc_table, "j", state, next_ip=0x104, imm=-2)
        assert r == 0x104 - 8

    def test_jal_links_next_ip(self, risc_table, state):
        r, regwr, _m = execute(risc_table, "jal", state, next_ip=0x104, imm=4)
        assert r == 0x104 + 16
        assert regwr == [(31, 0x104)]

    def test_jr_absolute(self, risc_table, state):
        state.regs[31] = 0x2000
        r, _w, _m = execute(risc_table, "jr", state, rs1=31)
        assert r == 0x2000

    def test_jalr_links_and_jumps(self, risc_table, state):
        state.regs[5] = 0x3000
        r, regwr, _m = execute(risc_table, "jalr", state, next_ip=0x104,
                               rd=6, rs1=5)
        assert r == 0x3000
        assert regwr == [(6, 0x104)]

    def test_halt_sets_flag(self, risc_table, state):
        r, _w, _m = execute(risc_table, "halt", state)
        assert r is None
        assert state.halted

    def test_switchtarget_calls_state(self, risc_table, state):
        execute(risc_table, "switchtarget", state, imm=3)
        assert state.switched_to == 3

    def test_simop_delegates(self, risc_table, state):
        execute(risc_table, "simop", state, imm=7)
        assert state.simops == [7]

    def test_nop_does_nothing(self, risc_table, state):
        r, regwr, memwr = execute(risc_table, "nop", state)
        assert (r, regwr, memwr) == (None, [], [])
