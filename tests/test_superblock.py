"""Superblock engine: differential equivalence, SMC, cycle-model parity.

The superblock engine is a pure optimisation: every test here pins its
observable behaviour to the reference ``predict`` loop — final register
file, memory image, exit code, instruction/slot counts, and (with a
cycle model attached) bit-identical cycle counts.  Self-modifying code
gets its own regression tests because translated blocks cache decoded
semantics far more aggressively than the decode cache alone.
"""

import hashlib

import pytest

from repro.cycles.aie import AieModel
from repro.cycles.doe import DoeModel
from repro.cycles.ilp import IlpModel
from repro.programs import load_program, program_names
from repro.sim import superblock as superblock_mod
from repro.sim.interpreter import ENGINES, Interpreter
from repro.sim.state import TEXT_BASE

from .conftest import run_built
from .test_sim_interpreter import enc, make_state

@pytest.fixture()
def loop_words(risc_table):
    """r6 = sum(1..10); then halt.  33 dynamic instructions."""
    return [
        enc(risc_table, "addi", rd=5, rs1=0, imm=10),
        enc(risc_table, "addi", rd=6, rs1=0, imm=0),
        enc(risc_table, "add", rd=6, rs1=6, rs2=5),
        enc(risc_table, "addi", rd=5, rs1=5, imm=-1),
        enc(risc_table, "bne", rs1=5, rs2=0, imm=-3),
        enc(risc_table, "halt"),
    ]


MIXED_SOURCE = """
int helper(int x) { return x * 3 + 1; }
int main() {
    int s = 0;
    for (int i = 0; i < 20; i++) s += helper(i);
    print_int(s);
    putchar('\\n');
    return 0;
}
"""


def mem_digest(mem) -> str:
    """Canonical digest of resident memory, skipping all-zero pages.

    Zero pages are skipped because the sparse memory may or may not
    materialise them depending on access patterns (e.g. the word-view
    fast path), while their contents are identical by definition.
    """
    h = hashlib.sha256()
    for index, data in sorted(mem.pages()):
        if not any(data):
            continue
        h.update(index.to_bytes(8, "little"))
        h.update(bytes(data))
    return h.hexdigest()


def snapshot(program, stats) -> dict:
    state = program.state
    return {
        "exit": state.exit_code,
        "halted": state.halted,
        "ip": state.ip,
        "regs": tuple(state.regs),
        "mem": mem_digest(state.mem),
        "output": program.output,
        "instructions": stats.executed_instructions,
        "slots": stats.executed_slots,
        "mem_instructions": stats.memory_instructions,
        "mem_ops": stats.memory_ops,
        "decoded": stats.decoded_instructions,
        "isa_switches": stats.isa_switches,
    }


class TestDifferential:
    """predict vs superblock over every bundled benchmark program."""

    @pytest.mark.parametrize("name", sorted(program_names()))
    def test_benchmark_bit_identical(self, kc, name):
        built = kc(load_program(name), isa="risc", filename=f"{name}.kc")
        base = snapshot(*run_built(built, engine="predict"))
        fast = snapshot(*run_built(built, engine="superblock"))
        assert fast == base

    def test_mixed_isa_program(self, kc):
        built = kc(MIXED_SOURCE, isa="risc", isa_map={"helper": "vliw4"},
                   filename="sbmix.kc")
        base = snapshot(*run_built(built, engine="predict"))
        fast = snapshot(*run_built(built, engine="superblock"))
        assert base["isa_switches"] == 40
        assert fast == base

    def test_all_engines_agree(self, kc):
        built = kc(MIXED_SOURCE, isa="vliw2", filename="sbv2.kc")
        snaps = {e: snapshot(*run_built(built, engine=e)) for e in ENGINES}
        reference = snaps["predict"]
        for engine, snap in snaps.items():
            # Decode counts legitimately differ per engine; everything
            # architectural must not.
            snap = dict(snap)
            ref = dict(reference)
            del snap["decoded"], ref["decoded"]
            assert snap == ref, engine


class TestCycleModelParity:
    """ILP (batched observe_block) and AIE/DOE (per-instruction
    fallback) must report identical cycles under both engines."""

    @pytest.mark.parametrize("model_fn", [
        IlpModel,
        AieModel,
        lambda: DoeModel(issue_width=8),
    ], ids=["ilp", "aie", "doe"])
    def test_cycle_counts_identical(self, kc, model_fn):
        built = kc(load_program("dct4x4"), isa="risc",
                   filename="dct4x4.kc")
        results = {}
        for engine in ("predict", "superblock"):
            model = model_fn()
            program, stats = run_built(built, engine=engine,
                                       cycle_model=model)
            results[engine] = (model.cycles, model.ops,
                               model.instructions, program.output)
        assert results["superblock"] == results["predict"]

    def test_ilp_uses_block_observation(self, kc):
        built = kc(load_program("fft"), isa="risc", filename="fft.kc")
        model = IlpModel()
        reference = IlpModel()
        run_built(built, engine="predict", cycle_model=reference)
        program, stats = run_built(built, engine="superblock",
                                   cycle_model=model)
        assert model.observe_block is not None
        assert (model.cycles, model.ops) == \
            (reference.cycles, reference.ops)
        assert model.instructions == stats.executed_instructions


class TestSelfModifyingCode:
    """Stores into decoded code must invalidate plans and cache lines."""

    def _patch_loop_words(self, risc_table):
        """A loop whose body instruction is patched on the first pass.

        Iteration 1 executes ``addi r6, r6, 1``; the loop body then
        overwrites that instruction with ``addi r6, r6, 10``, so
        iteration 2 adds 10: r6 == 11 iff the new decode executes.
        """
        data_off = TEXT_BASE + 8 * 4
        patched_addr = TEXT_BASE + 1 * 4
        return [
            enc(risc_table, "addi", rd=5, rs1=0, imm=2),
            enc(risc_table, "addi", rd=6, rs1=6, imm=1),   # patched
            enc(risc_table, "lw", rd=1, rs1=0, imm=data_off),
            enc(risc_table, "addi", rd=2, rs1=0, imm=patched_addr),
            enc(risc_table, "sw", rt=1, rs1=2, imm=0),
            enc(risc_table, "addi", rd=5, rs1=5, imm=-1),
            enc(risc_table, "bne", rs1=5, rs2=0, imm=-6),
            enc(risc_table, "halt"),
            enc(risc_table, "addi", rd=6, rs1=6, imm=10),  # data: new word
        ]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_loop_patch_executes_new_decode(self, target, risc_table,
                                            engine):
        state = make_state(target, self._patch_loop_words(risc_table))
        stats = Interpreter(state, engine=engine).run()
        assert state.regs[6] == 11
        assert state.halted
        assert stats.executed_instructions == 14

    @pytest.mark.parametrize("hot_threshold", [None, 1],
                             ids=["cold", "translated"])
    def test_patch_ahead_in_same_block(self, target, risc_table,
                                       monkeypatch, hot_threshold):
        """A store that rewrites a *later* instruction of the same
        straight-line block must abort the block mid-flight: the
        already-fetched stale tail must not execute.

        ``hot_threshold=1`` forces translation so the abort path of the
        compiled block function is exercised too.
        """
        if hot_threshold is not None:
            monkeypatch.setattr(superblock_mod, "HOT_THRESHOLD",
                                hot_threshold)
        data_off = TEXT_BASE + 6 * 4
        patched_addr = TEXT_BASE + 4 * 4
        words = [
            enc(risc_table, "lw", rd=1, rs1=0, imm=data_off),
            enc(risc_table, "addi", rd=2, rs1=0, imm=patched_addr),
            enc(risc_table, "sw", rt=1, rs1=2, imm=0),
            enc(risc_table, "addi", rd=3, rs1=0, imm=1),
            enc(risc_table, "addi", rd=7, rs1=0, imm=1),   # patched
            enc(risc_table, "halt"),
            enc(risc_table, "addi", rd=7, rs1=0, imm=99),  # data: new word
        ]
        results = {}
        for engine in ("predict", "superblock"):
            state = make_state(target, list(words))
            stats = Interpreter(state, engine=engine).run()
            results[engine] = (state.regs[7], tuple(state.regs),
                               stats.executed_instructions)
        assert results["superblock"][0] == 99
        assert results["superblock"] == results["predict"]

    def test_data_store_in_code_page_keeps_plans(self, target, risc_table):
        """Stores into the *data* bytes of a code page must not blow
        away plans — invalidation is byte-range precise."""
        scratch = TEXT_BASE + 16 * 4  # same page, beyond the code
        words = [
            enc(risc_table, "addi", rd=5, rs1=0, imm=3),
            enc(risc_table, "addi", rd=2, rs1=0, imm=scratch),
            enc(risc_table, "sw", rt=5, rs1=2, imm=0),
            enc(risc_table, "addi", rd=5, rs1=5, imm=-1),
            enc(risc_table, "bne", rs1=5, rs2=0, imm=-3),
            enc(risc_table, "halt"),
        ]
        state = make_state(target, words)
        interp = Interpreter(state, engine="superblock")
        stats = interp.run()
        assert state.regs[5] == 0
        assert state.mem.load4(scratch) == 1
        # Nothing was invalidated: every static instruction decoded once.
        assert stats.decoded_instructions == len(words)
        assert interp.superblock.plans


class TestEngineBehavior:
    def test_unknown_engine_rejected(self, target, risc_table):
        state = make_state(target, [enc(risc_table, "halt")])
        with pytest.raises(ValueError, match="unknown engine"):
            Interpreter(state, engine="turbo")

    def test_budget_stops_mid_block(self, target, loop_words):
        """max_instructions must be exact even when it lands inside a
        translated block (the engine trims via the predict tail)."""
        reference = make_state(target, loop_words)
        Interpreter(reference, engine="predict").run(max_instructions=10)
        state = make_state(target, loop_words)
        stats = Interpreter(state, engine="superblock").run(
            max_instructions=10)
        assert stats.executed_instructions == 10
        assert not state.halted
        assert tuple(state.regs) == tuple(reference.regs)
        assert state.ip == reference.ip

    def test_chain_ablation_preserves_results(self, target, loop_words):
        state = make_state(target, loop_words)
        interp = Interpreter(state, engine="superblock")
        interp.superblock.chain = False
        stats = interp.run()
        assert state.regs[6] == 55
        assert stats.executed_instructions == 33
        assert interp.superblock.chain_hits == 0

    def test_chaining_links_blocks(self, target, loop_words):
        state = make_state(target, loop_words)
        interp = Interpreter(state, engine="superblock")
        interp.run()
        assert interp.superblock.chain_hits > 0
        assert interp.superblock.plans_built >= 1

    def test_traced_run_falls_back(self, target, loop_words):
        """Debug features (ip history) force the featureful loop even
        when the superblock engine is selected."""
        state = make_state(target, loop_words)
        interp = Interpreter(state, engine="superblock", ip_history=16)
        stats = interp.run()
        assert state.regs[6] == 55
        assert stats.executed_instructions == 33

    def test_decode_stats_match_predict(self, target, loop_words):
        state = make_state(target, loop_words)
        stats = Interpreter(state, engine="superblock").run()
        # 6 static instructions decoded exactly once each.
        assert stats.decoded_instructions == 6
        assert stats.executed_instructions == 33
        assert stats.executed_slots == 33
