"""The KC switch statement (C semantics: fall-through, break, default)."""

import pytest

from repro.lang.parser import ParseError, parse_program
from repro.lang.sema import SemaError, analyze


def run(kc, simulate, source, isa="risc"):
    program, _stats = simulate(kc(source, isa=isa))
    return program.output


class TestParsing:
    def test_shape(self):
        program = parse_program(
            "int f(int x) { switch (x) { case 1: return 1; "
            "default: return 0; } }"
        )
        stmt = program.functions[0].body.body[0]
        assert len(stmt.cases) == 1
        assert stmt.default is not None

    def test_duplicate_case_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "int f(int x) { switch (x) { case 1: break; "
                "case 1: break; } return 0; }"
            )

    def test_duplicate_default_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "int f(int x) { switch (x) { default: break; "
                "default: break; } return 0; }"
            )

    def test_statement_before_case_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "int f(int x) { switch (x) { x = 1; case 1: break; } "
                "return 0; }"
            )

    def test_case_constant_expressions(self):
        program = parse_program(
            "int f(int x) { switch (x) { case 1 << 4: return 1; } "
            "return 0; }"
        )
        assert program.functions[0].body.body[0].cases[0][0] == 16


class TestSemantics:
    def test_break_allowed_in_switch(self):
        analyze(parse_program(
            "int f(int x) { switch (x) { case 1: break; } return 0; }"
        ))

    def test_continue_not_allowed_in_plain_switch(self):
        with pytest.raises(SemaError):
            analyze(parse_program(
                "int f(int x) { switch (x) { case 1: continue; } "
                "return 0; }"
            ))

    def test_continue_in_loop_around_switch(self):
        analyze(parse_program(
            "int f(int n) { for (int i = 0; i < n; i++) { "
            "switch (i) { case 1: continue; } } return 0; }"
        ))


class TestExecution:
    SOURCE = """
    int classify(int x) {
        int r = 0;
        switch (x) {
            case 0:
            case 1:
                r = 100;
                break;
            case 2:
                r = 200;    // falls through into case 3
            case 3:
                r += 5;
                break;
            default:
                r = -1;
        }
        return r;
    }
    int main() {
        for (int i = -1; i <= 4; i++) {
            print_int(classify(i));
            putchar(' ');
        }
        return 0;
    }
    """

    @pytest.mark.parametrize("isa", ["risc", "vliw4"])
    def test_fallthrough_and_default(self, kc, simulate, isa):
        out = run(kc, simulate, self.SOURCE, isa=isa)
        assert out == "-1 100 100 205 5 -1 "

    def test_switch_without_default_falls_out(self, kc, simulate):
        source = """
        int main() {
            int r = 7;
            switch (42) { case 1: r = 1; }
            print_int(r);
            return 0;
        }
        """
        assert run(kc, simulate, source).strip() == "7"

    def test_empty_switch(self, kc, simulate):
        source = "int main() { switch (1) { } print_int(9); return 0; }"
        assert run(kc, simulate, source).strip() == "9"

    def test_switch_inside_loop_with_break(self, kc, simulate):
        source = """
        int main() {
            int total = 0;
            for (int i = 0; i < 6; i++) {
                switch (i % 3) {
                    case 0: total += 1; break;
                    case 1: total += 10; break;
                    default: total += 100; break;
                }
            }
            print_int(total);
            return 0;
        }
        """
        assert run(kc, simulate, source).strip() == "222"

    def test_return_inside_case(self, kc, simulate):
        source = """
        int pick(int x) {
            switch (x) {
                case 5: return 55;
                default: return 99;
            }
        }
        int main() { print_int(pick(5) + pick(6)); return 0; }
        """
        assert run(kc, simulate, source).strip() == "154"

    def test_state_machine(self, kc, simulate):
        """A switch-driven DFA — the idiom switch exists for."""
        source = """
        int main() {
            int state = 0;
            int input[9] = { 1, 2, 1, 1, 2, 2, 2, 1, 2 };
            int accepted = 0;
            for (int i = 0; i < 9; i++) {
                switch (state) {
                    case 0:
                        state = input[i] == 1 ? 1 : 0;
                        break;
                    case 1:
                        state = input[i] == 2 ? 2 : 1;
                        break;
                    case 2:
                        accepted++;
                        state = 0;
                        break;
                }
            }
            print_int(accepted);
            return 0;
        }
        """
        assert run(kc, simulate, source).strip() == "2"
